//! DTD conformance checking ("an xml tree of the dtd", paper §2.1).
//!
//! Each node's child-label sequence must be a word of its type's content
//! model (text values are orthogonal: `#PCDATA` occurrences only *license*
//! a value, our trees store values out of band). Matching uses Brzozowski
//! derivatives with eager `∅`/ε simplification, which stays small for the
//! paper's content models.

use crate::tree::{NodeId, Tree};
use std::fmt;
use x2s_dtd::{ContentModel, Dtd, ElemId};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root element's type differs from the DTD root.
    WrongRoot {
        /// expected root type name
        expected: String,
        /// found root type name
        found: String,
    },
    /// A node's children do not match its content model.
    ContentMismatch {
        /// the offending node
        node: NodeId,
        /// its type name
        elem: String,
        /// rendered child sequence
        children: String,
    },
    /// A node carries text but its content model has no `#PCDATA`.
    UnexpectedText {
        /// the offending node
        node: NodeId,
        /// its type name
        elem: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongRoot { expected, found } => {
                write!(f, "root element is <{found}>, DTD expects <{expected}>")
            }
            ValidationError::ContentMismatch {
                node,
                elem,
                children,
            } => write!(
                f,
                "children of node {node:?} (<{elem}>) do not match its content model: [{children}]"
            ),
            ValidationError::UnexpectedText { node, elem } => {
                write!(
                    f,
                    "node {node:?} (<{elem}>) has text but no #PCDATA in its model"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate that `tree` conforms to `dtd`.
pub fn validate(tree: &Tree, dtd: &Dtd) -> Result<(), ValidationError> {
    if tree.label(tree.root()) != dtd.root() {
        return Err(ValidationError::WrongRoot {
            expected: dtd.name(dtd.root()).to_string(),
            found: dtd.name(tree.label(tree.root())).to_string(),
        });
    }
    for n in tree.node_ids() {
        let label = tree.label(n);
        let model = dtd.content(label);
        if tree.value(n).is_some() && !model.allows_text() {
            return Err(ValidationError::UnexpectedText {
                node: n,
                elem: dtd.name(label).to_string(),
            });
        }
        let seq: Vec<ElemId> = tree.children(n).iter().map(|&c| tree.label(c)).collect();
        if !matches_model(model, &seq) {
            return Err(ValidationError::ContentMismatch {
                node: n,
                elem: dtd.name(label).to_string(),
                children: seq
                    .iter()
                    .map(|&c| dtd.name(c))
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
    }
    Ok(())
}

/// Whether a label sequence is a word of the content model.
pub fn matches_model(model: &ContentModel, seq: &[ElemId]) -> bool {
    let mut current = Some(model.clone());
    for &x in seq {
        current = match current {
            Some(m) => deriv(&m, x),
            None => return false,
        };
    }
    current.as_ref().is_some_and(nullable)
}

/// Whether ε is a word of the model.
fn nullable(m: &ContentModel) -> bool {
    match m {
        ContentModel::Empty | ContentModel::Text => true,
        ContentModel::Elem(_) => false,
        ContentModel::Plus(inner) => nullable(inner),
        ContentModel::Seq(ps) => ps.iter().all(nullable),
        ContentModel::Choice(ps) => ps.iter().any(nullable),
        ContentModel::Star(_) | ContentModel::Opt(_) => true,
    }
}

/// Brzozowski derivative; `None` encodes the empty language ∅.
fn deriv(m: &ContentModel, x: ElemId) -> Option<ContentModel> {
    match m {
        ContentModel::Empty | ContentModel::Text => None,
        ContentModel::Elem(b) => (*b == x).then_some(ContentModel::Empty),
        ContentModel::Seq(ps) => {
            let mut branches: Vec<ContentModel> = Vec::new();
            for (i, p) in ps.iter().enumerate() {
                if let Some(dp) = deriv(p, x) {
                    let mut rest = vec![dp];
                    rest.extend(ps[i + 1..].iter().cloned());
                    branches.push(simplify_seq(rest));
                }
                if !nullable(p) {
                    break;
                }
            }
            choice_of(branches)
        }
        ContentModel::Choice(ps) => {
            let branches: Vec<ContentModel> = ps.iter().filter_map(|p| deriv(p, x)).collect();
            choice_of(branches)
        }
        ContentModel::Star(p) | ContentModel::Plus(p) => {
            deriv(p, x).map(|dp| simplify_seq(vec![dp, ContentModel::Star(p.clone())]))
        }
        ContentModel::Opt(p) => deriv(p, x),
    }
}

fn simplify_seq(mut parts: Vec<ContentModel>) -> ContentModel {
    parts.retain(|p| !matches!(p, ContentModel::Empty | ContentModel::Text));
    if parts.len() == 1 {
        if let Some(only) = parts.pop() {
            return only;
        }
    }
    match parts.len() {
        0 => ContentModel::Empty,
        _ => ContentModel::Seq(parts),
    }
}

fn choice_of(mut branches: Vec<ContentModel>) -> Option<ContentModel> {
    match branches.len() {
        0 => None,
        1 => branches.pop(),
        _ => Some(ContentModel::Choice(branches)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xml;
    use x2s_dtd::{samples, DtdBuilder, ModelSpec};

    #[test]
    fn conforming_document_validates() {
        let d = samples::dept();
        let t = parse_xml(
            &d,
            "<dept><course><cno>c1</cno><title>t</title><prereq/><takenBy><student><sno/><name/><qualified/></student></takenBy><project><pno/><ptitle/><required/></project></course></dept>",
        )
        .unwrap();
        validate(&t, &d).unwrap();
    }

    #[test]
    fn missing_required_child_fails() {
        let d = samples::dept();
        // course without its required cno/title/prereq/takenBy
        let t = parse_xml(&d, "<dept><course/></dept>").unwrap();
        let err = validate(&t, &d).unwrap_err();
        assert!(matches!(err, ValidationError::ContentMismatch { .. }));
    }

    #[test]
    fn wrong_order_fails() {
        let d = samples::dept();
        let t = parse_xml(
            &d,
            "<dept><course><title/><cno/><prereq/><takenBy/></course></dept>",
        )
        .unwrap();
        assert!(validate(&t, &d).is_err());
    }

    #[test]
    fn wrong_root_fails() {
        let d = samples::dept();
        let mut t = crate::tree::Tree::with_root(d.elem("course").unwrap());
        t.set_value(t.root(), None);
        let err = validate(&t, &d).unwrap_err();
        assert!(matches!(err, ValidationError::WrongRoot { .. }));
    }

    #[test]
    fn unexpected_text_fails() {
        let d = DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("b"))
            .elem("b", ModelSpec::Empty)
            .build()
            .unwrap();
        let mut t = crate::tree::Tree::with_root(d.elem("a").unwrap());
        t.set_value(t.root(), Some("oops"));
        assert!(matches!(
            validate(&t, &d),
            Err(ValidationError::UnexpectedText { .. })
        ));
    }

    #[test]
    fn star_allows_any_repetition() {
        let d = samples::dept_simplified();
        for doc in [
            "<dept/>",
            "<dept><course/></dept>",
            "<dept><course/><course/><course/></dept>",
        ] {
            let t = parse_xml(&d, doc).unwrap();
            validate(&t, &d).unwrap();
        }
    }

    #[test]
    fn choice_model_matching() {
        let d = DtdBuilder::new("a")
            .elem(
                "a",
                ModelSpec::Star(Box::new(ModelSpec::Choice(vec![
                    ModelSpec::elem("b"),
                    ModelSpec::elem("c"),
                ]))),
            )
            .elem("b", ModelSpec::Empty)
            .elem("c", ModelSpec::Empty)
            .build()
            .unwrap();
        for doc in ["<a/>", "<a><b/><c/><b/></a>", "<a><c/><c/></a>"] {
            let t = parse_xml(&d, doc).unwrap();
            validate(&t, &d).unwrap();
        }
    }

    #[test]
    fn plus_requires_one() {
        let d = DtdBuilder::new("a")
            .elem("a", ModelSpec::Plus(Box::new(ModelSpec::elem("b"))))
            .elem("b", ModelSpec::Empty)
            .build()
            .unwrap();
        assert!(validate(&parse_xml(&d, "<a/>").unwrap(), &d).is_err());
        validate(&parse_xml(&d, "<a><b/></a>").unwrap(), &d).unwrap();
        validate(&parse_xml(&d, "<a><b/><b/></a>").unwrap(), &d).unwrap();
    }

    #[test]
    fn matches_model_direct() {
        use x2s_dtd::model::cm;
        let b = ElemId(1);
        let c = ElemId(2);
        // (b | c)* then b
        let model = cm::seq(vec![
            cm::star(cm::choice(vec![
                ContentModel::Elem(b),
                ContentModel::Elem(c),
            ])),
            ContentModel::Elem(b),
        ]);
        assert!(matches_model(&model, &[b]));
        assert!(matches_model(&model, &[c, b]));
        assert!(matches_model(&model, &[b, c, b]));
        assert!(!matches_model(&model, &[]));
        assert!(!matches_model(&model, &[c]));
    }
}
