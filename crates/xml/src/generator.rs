//! A reimplementation of the IBM AlphaWorks XML Generator semantics used by
//! the paper's evaluation (§6, "Testing data"):
//!
//! * `X_L` — "the maximum number of levels in the resulting xml tree. If a
//!   tree goes beyond X_L levels, it will add none of the optional elements
//!   (denoted by * or ? in the dtd) and only one of each of the required
//!   elements (denoted by + or with no option)";
//! * `X_R` — "the maximum number of occurrences of child elements in the
//!   presence of the * or + option. In other words, the number of children of
//!   each element of a type defined with this option is a random number
//!   between 0 and X_R";
//! * trimming — "excessively large xml trees generated were trimmed" to a
//!   target element count; we trim in BFS order (prefix-closed, still a
//!   tree). Generation itself proceeds in BFS order with a node budget, so
//!   trimming and budgeted generation coincide and generation is `O(target)`
//!   even when the untrimmed tree would be huge.
//!
//! Values: every `#PCDATA`-licensed element receives a value drawn from a
//! small alphabet (`"v0" … "v{k-1}"`), so `text() = c` qualifiers have
//! controllable selectivity; [`mark_values`] overrides exactly `m` nodes of
//! one type with a marker value (used by Exp-2's `a[text()="sel"]` sweeps).

use crate::rng::SplitMix64;
use crate::tree::{NodeId, Tree};
use std::collections::VecDeque;
use x2s_dtd::{ContentModel, Dtd, ElemId};

/// Configuration mirroring the IBM XML Generator parameters used in §6.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// `X_L`: maximum number of levels (root = level 1). Default 12
    /// (the paper's default is X_L = 12).
    pub max_levels: usize,
    /// `X_R`: maximum repetitions of `*`/`+` children. Default 4.
    pub max_repeats: usize,
    /// RNG seed — generation is fully deterministic given the seed.
    pub seed: u64,
    /// Trim/budget the tree to exactly this many elements, if set
    /// (the paper's default dataset size is 120 000 elements).
    pub target_elements: Option<usize>,
    /// Size of the value alphabet (`"v0"…"v{n-1}"`); 0 disables values.
    pub value_alphabet: usize,
    /// Hard recursion stop: beyond `max_levels + slack`, even required
    /// children are dropped (guards DTDs whose required children recurse).
    pub required_depth_slack: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_levels: 12,
            max_repeats: 4,
            seed: 0xF005_BA11,
            target_elements: Some(120_000),
            value_alphabet: 16,
            required_depth_slack: 16,
        }
    }
}

impl GeneratorConfig {
    /// Convenience: set `X_L`/`X_R`/target in one call.
    pub fn shaped(xl: usize, xr: usize, target: Option<usize>) -> Self {
        GeneratorConfig {
            max_levels: xl,
            max_repeats: xr,
            target_elements: target,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Document generator over a DTD.
pub struct Generator<'a> {
    dtd: &'a Dtd,
    cfg: GeneratorConfig,
}

impl<'a> Generator<'a> {
    /// Create a generator for `dtd` with the given configuration.
    pub fn new(dtd: &'a Dtd, cfg: GeneratorConfig) -> Self {
        Generator { dtd, cfg }
    }

    /// Generate a document. BFS expansion: each dequeued node receives its
    /// children according to the X_L/X_R rules; generation stops early once
    /// the node budget is exhausted (equivalent to the paper's post-hoc BFS
    /// trimming).
    pub fn generate(&self) -> Tree {
        let mut rng = SplitMix64::seed_from_u64(self.cfg.seed);
        let budget = self.cfg.target_elements.unwrap_or(usize::MAX);
        let mut tree = Tree::with_root(self.dtd.root());
        let root = tree.root();
        self.assign_value(&mut tree, root, &mut rng);
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::from([(root, 1)]);
        while let Some((node, level)) = queue.pop_front() {
            if tree.len() >= budget {
                break;
            }
            let labels = self.child_labels(tree.label(node), level, &mut rng);
            for label in labels {
                if tree.len() >= budget {
                    break;
                }
                let child = tree.add_child(node, label);
                self.assign_value(&mut tree, child, &mut rng);
                queue.push_back((child, level + 1));
            }
        }
        tree
    }

    fn assign_value(&self, tree: &mut Tree, node: NodeId, rng: &mut SplitMix64) {
        if self.cfg.value_alphabet > 0 && self.dtd.allows_text(tree.label(node)) {
            let v = rng.gen_range(0..self.cfg.value_alphabet);
            tree.set_value(node, Some(&format!("v{v}")));
        }
    }

    /// Instantiate one node's content model into a child-label sequence.
    fn child_labels(&self, label: ElemId, level: usize, rng: &mut SplitMix64) -> Vec<ElemId> {
        let mut out = Vec::new();
        let beyond = level >= self.cfg.max_levels;
        let hard_stop = level >= self.cfg.max_levels + self.cfg.required_depth_slack;
        if !hard_stop {
            self.expand(self.dtd.content(label), beyond, rng, &mut out);
        }
        out
    }

    fn expand(
        &self,
        model: &ContentModel,
        beyond: bool,
        rng: &mut SplitMix64,
        out: &mut Vec<ElemId>,
    ) {
        match model {
            ContentModel::Empty | ContentModel::Text => {}
            ContentModel::Elem(b) => out.push(*b),
            ContentModel::Seq(ps) => {
                for p in ps {
                    self.expand(p, beyond, rng, out);
                }
            }
            ContentModel::Choice(ps) => {
                // Past X_L prefer a nullable branch (adds nothing) if any;
                // otherwise pick the first branch deterministically.
                if beyond {
                    if !ps.iter().any(is_nullable) {
                        if let Some(first) = ps.first() {
                            self.expand(first, beyond, rng, out);
                        }
                    }
                } else if !ps.is_empty() {
                    let pick = rng.gen_range(0..ps.len());
                    self.expand(&ps[pick], beyond, rng, out);
                }
            }
            ContentModel::Star(p) => {
                if !beyond {
                    let k = rng.gen_range(0..=self.cfg.max_repeats);
                    for _ in 0..k {
                        self.expand(p, beyond, rng, out);
                    }
                }
            }
            ContentModel::Plus(p) => {
                let k = if beyond {
                    1
                } else {
                    rng.gen_range(0..=self.cfg.max_repeats).max(1)
                };
                for _ in 0..k {
                    self.expand(p, beyond, rng, out);
                }
            }
            ContentModel::Opt(p) => {
                if !beyond && rng.gen_bool(0.5) {
                    self.expand(p, beyond, rng, out);
                }
            }
        }
    }
}

fn is_nullable(m: &ContentModel) -> bool {
    match m {
        ContentModel::Empty | ContentModel::Text => true,
        ContentModel::Elem(_) => false,
        ContentModel::Plus(p) => is_nullable(p),
        ContentModel::Seq(ps) => ps.iter().all(is_nullable),
        ContentModel::Choice(ps) => ps.iter().any(is_nullable),
        ContentModel::Star(_) | ContentModel::Opt(_) => true,
    }
}

/// Give exactly `count` nodes of type `label` the marker value (and strip it
/// from all other nodes of that type). Nodes are chosen pseudo-randomly but
/// deterministically from `seed`. Returns how many nodes were marked (may be
/// fewer than requested when the tree has fewer such nodes).
pub fn mark_values(tree: &mut Tree, label: ElemId, count: usize, marker: &str, seed: u64) -> usize {
    let mut candidates: Vec<NodeId> = tree
        .node_ids()
        .filter(|&n| tree.label(n) == label)
        .collect();
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Fisher–Yates prefix shuffle: enough to pick `count` random nodes.
    let picks = count.min(candidates.len());
    for i in 0..picks {
        let j = rng.gen_range(i..candidates.len());
        candidates.swap(i, j);
    }
    for (i, &n) in candidates.iter().enumerate() {
        if i < picks {
            tree.set_value(n, Some(marker));
        } else if tree.value(n) == Some(marker) {
            tree.set_value(n, Some("v_unmarked"));
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2s_dtd::samples;

    #[test]
    fn deterministic_for_seed() {
        let d = samples::cross();
        let cfg = GeneratorConfig::shaped(8, 4, Some(2000));
        let t1 = Generator::new(&d, cfg.clone()).generate();
        let t2 = Generator::new(&d, cfg).generate();
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1.preorder(), t2.preorder());
        for n in t1.node_ids() {
            assert_eq!(t1.label(n), t2.label(n));
            assert_eq!(t1.value(n), t2.value(n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = samples::cross();
        let a =
            Generator::new(&d, GeneratorConfig::shaped(8, 4, Some(2000)).with_seed(1)).generate();
        let b =
            Generator::new(&d, GeneratorConfig::shaped(8, 4, Some(2000)).with_seed(2)).generate();
        // identical sizes possible, but shapes should differ somewhere
        let differs = a.len() != b.len()
            || a.node_ids()
                .any(|n| a.label(n) != b.label(n) || a.children(n).len() != b.children(n).len());
        assert!(differs);
    }

    #[test]
    fn respects_target_budget() {
        let d = samples::cross();
        let t = Generator::new(&d, GeneratorConfig::shaped(12, 6, Some(5_000))).generate();
        assert!(t.len() <= 5_000);
        // a fanout-heavy config should hit the budget exactly
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn respects_max_levels() {
        let d = samples::cross();
        let t = Generator::new(&d, GeneratorConfig::shaped(5, 3, None)).generate();
        // all starred children: nothing may exceed X_L levels
        assert!(t.height() <= 5, "height {} > X_L", t.height());
    }

    #[test]
    fn deeper_xl_means_taller_trees() {
        let d = samples::cross();
        let shallow = Generator::new(&d, GeneratorConfig::shaped(4, 4, Some(4000))).generate();
        let deep = Generator::new(&d, GeneratorConfig::shaped(16, 4, Some(4000))).generate();
        assert!(deep.height() > shallow.height());
    }

    #[test]
    fn required_children_generated_beyond_xl() {
        // dept's course requires cno/title/prereq/takenBy even past X_L
        let d = samples::dept();
        let t = Generator::new(&d, GeneratorConfig::shaped(3, 2, Some(500))).generate();
        let course = d.elem("course").unwrap();
        for n in t.node_ids() {
            if t.label(n) == course && !t.children(n).is_empty() {
                let kinds: Vec<&str> = t.children(n).iter().map(|&c| d.name(t.label(c))).collect();
                assert!(kinds.contains(&"cno"), "course children: {kinds:?}");
            }
        }
    }

    #[test]
    fn values_drawn_from_alphabet() {
        let d = samples::cross();
        let mut cfg = GeneratorConfig::shaped(6, 3, Some(500));
        cfg.value_alphabet = 4;
        let t = Generator::new(&d, cfg).generate();
        for n in t.node_ids() {
            if let Some(v) = t.value(n) {
                assert!(["v0", "v1", "v2", "v3"].contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn mark_values_exact_count() {
        let d = samples::cross();
        let mut t = Generator::new(&d, GeneratorConfig::shaped(10, 4, Some(8000))).generate();
        let a = d.elem("a").unwrap();
        let total_a = t.count_label(a);
        assert!(total_a > 50, "need enough a nodes, got {total_a}");
        let marked = mark_values(&mut t, a, 50, "sel", 7);
        assert_eq!(marked, 50);
        let count = t
            .node_ids()
            .filter(|&n| t.label(n) == a && t.value(n) == Some("sel"))
            .count();
        assert_eq!(count, 50);
    }

    #[test]
    fn mark_values_caps_at_population() {
        let d = samples::cross();
        let mut t = Generator::new(&d, GeneratorConfig::shaped(4, 2, Some(100))).generate();
        let a = d.elem("a").unwrap();
        let total = t.count_label(a);
        let marked = mark_values(&mut t, a, total + 1000, "sel", 7);
        assert_eq!(marked, total);
    }

    #[test]
    fn generated_tree_validates_without_trimming() {
        // without a budget and with generous slack, generated docs conform
        let d = samples::dept_simplified();
        let t = Generator::new(&d, GeneratorConfig::shaped(6, 3, None)).generate();
        crate::validate::validate(&t, &d).unwrap();
    }
}
