//! A tiny deterministic PRNG used by the [`crate::generator`] module.
//!
//! The build environment cannot fetch crates.io, so instead of `rand`'s
//! `StdRng` we use SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — the same generator Java's
//! `SplittableRandom` and xoshiro seeding use. It passes BigCrush for the
//! statistical quality the document generator needs (branch choices and
//! repetition counts), is seedable from a `u64`, and is fully deterministic
//! across platforms, which the generator's reproducibility contract requires.
//!
//! The API mirrors the `rand` subset the generator used (`seed_from_u64`,
//! `gen_range` over half-open and inclusive ranges, `gen_bool`), so swapping
//! `rand` back in later is a two-line import change.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// Ranges that [`SplitMix64::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// Inclusive lower bound.
    fn low(&self) -> usize;
    /// Inclusive upper bound.
    fn high_inclusive(&self) -> usize;
}

impl SampleRange for Range<usize> {
    fn low(&self) -> usize {
        self.start
    }
    fn high_inclusive(&self) -> usize {
        assert!(self.end > self.start, "gen_range on empty range");
        self.end - 1
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn low(&self) -> usize {
        *self.start()
    }
    fn high_inclusive(&self) -> usize {
        assert!(self.end() >= self.start(), "gen_range on empty range");
        *self.end()
    }
}

impl SplitMix64 {
    /// Seed the generator; equal seeds give equal streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`) range.
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform rather than modulo-biased.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        let low = range.low() as u64;
        let span = ((range.high_inclusive() as u64) - low).wrapping_add(1);
        if span == 0 {
            // 2^64 possible values: every raw output is in range.
            return self.next_u64() as usize;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo >= span {
                return (low + (m >> 64) as u64) as usize;
            }
            // Rejection zone: retry to keep the distribution exact.
            let threshold = span.wrapping_neg() % span;
            if lo >= threshold {
                return (low + (m >> 64) as u64) as usize;
            }
        }
    }

    /// Bernoulli sample with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation (Vigna).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
