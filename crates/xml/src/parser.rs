//! A minimal XML parser for documents over a known DTD.
//!
//! Supports elements, text content, self-closing tags, comments, XML
//! declarations and the `&lt; &gt; &amp; &quot; &apos;` entities. Attributes
//! are rejected (the paper's data model has none, §2.1). Element names are
//! interned against the DTD — unknown names are an error, mirroring validity.

use crate::tree::Tree;
use std::fmt;
use x2s_dtd::Dtd;

/// XML parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Syntax problem at a byte offset.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
    /// A tag name not declared by the DTD.
    UnknownElement {
        /// Byte offset of the tag.
        offset: usize,
        /// The undeclared name.
        name: String,
    },
    /// Close tag does not match the open tag.
    Mismatched {
        /// Byte offset of the close tag.
        offset: usize,
        /// The open tag's name.
        open: String,
        /// The close tag's name.
        close: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::UnknownElement { offset, name } => {
                write!(f, "unknown element <{name}> at byte {offset}")
            }
            XmlError::Mismatched {
                offset,
                open,
                close,
            } => {
                write!(f, "mismatched </{close}> for <{open}> at byte {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// Parse an XML document into a [`Tree`] over `dtd`'s element types.
pub fn parse_xml(dtd: &Dtd, input: &str) -> Result<Tree, XmlError> {
    let mut p = P {
        b: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog();
    let (name, self_closing) = p.open_tag()?;
    let root_label = dtd.elem(&name).ok_or_else(|| XmlError::UnknownElement {
        offset: p.pos,
        name: name.clone(),
    })?;
    let mut tree = Tree::with_root(root_label);
    let root = tree.root();
    if !self_closing {
        p.content(dtd, &mut tree, root, &name)?;
    }
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(tree)
}

struct P<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.b.len()
    }

    fn err(&self, m: &str) -> XmlError {
        XmlError::Syntax {
            offset: self.pos,
            message: m.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_misc();
        if self.b[self.pos..].starts_with(b"<?") {
            while self.pos < self.b.len() && !self.b[self.pos..].starts_with(b"?>") {
                self.pos += 1;
            }
            self.pos = (self.pos + 2).min(self.b.len());
        }
        self.skip_misc();
        // optional DOCTYPE
        if self.b[self.pos..].starts_with(b"<!DOCTYPE") {
            let mut depth = 0usize;
            while self.pos < self.b.len() {
                match self.b[self.pos] {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        self.skip_misc();
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.b[self.pos..].starts_with(b"<!--") {
                if let Some(i) = find(self.b, self.pos + 4, b"-->") {
                    self.pos = i + 3;
                    continue;
                }
                self.pos = self.b.len();
            }
            break;
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(&c) = self.b.get(self.pos) {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a tag name"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.pos]).into_owned())
    }

    /// Parse `<name>` or `<name/>`; returns (name, self_closing).
    fn open_tag(&mut self) -> Result<(String, bool), XmlError> {
        if self.b.get(self.pos) != Some(&b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.name()?;
        self.skip_ws();
        match self.b.get(self.pos) {
            Some(b'/') if self.b.get(self.pos + 1) == Some(&b'>') => {
                self.pos += 2;
                Ok((name, true))
            }
            Some(b'>') => {
                self.pos += 1;
                Ok((name, false))
            }
            _ => Err(self.err("attributes are not supported; expected `>` or `/>`")),
        }
    }

    fn content(
        &mut self,
        dtd: &Dtd,
        tree: &mut Tree,
        node: crate::tree::NodeId,
        open_name: &str,
    ) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unexpected end of input inside an element"));
            }
            if self.b[self.pos..].starts_with(b"<!--") {
                self.skip_misc();
                continue;
            }
            if self.b[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.name()?;
                self.skip_ws();
                if self.b.get(self.pos) != Some(&b'>') {
                    return Err(self.err("expected `>` after close tag"));
                }
                self.pos += 1;
                if close != open_name {
                    return Err(XmlError::Mismatched {
                        offset: self.pos,
                        open: open_name.to_string(),
                        close,
                    });
                }
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    tree.set_value(node, Some(trimmed));
                }
                return Ok(());
            }
            if self.b[self.pos] == b'<' {
                let tag_offset = self.pos;
                let (name, self_closing) = self.open_tag()?;
                let label = dtd.elem(&name).ok_or(XmlError::UnknownElement {
                    offset: tag_offset,
                    name: name.clone(),
                })?;
                let child = tree.add_child(node, label);
                if !self_closing {
                    self.content(dtd, tree, child, &name)?;
                }
            } else {
                let start = self.pos;
                while self.pos < self.b.len() && self.b[self.pos] != b'<' {
                    self.pos += 1;
                }
                text.push_str(&unescape(&String::from_utf8_lossy(
                    &self.b[start..self.pos],
                )));
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| haystack[i..].starts_with(needle))
}

/// Decode the five predefined XML entities.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let replaced = [
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&amp;", '&'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ]
        .iter()
        .find(|(e, _)| rest.starts_with(e));
        match replaced {
            Some((e, c)) => {
                out.push(*c);
                rest = &rest[e.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2s_dtd::samples;

    #[test]
    fn parses_nested_document() {
        let d = samples::dept_simplified();
        let t = parse_xml(
            &d,
            "<dept><course><course/><student/></course><course/></dept>",
        )
        .unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.children(t.root()).len(), 2);
        let first = t.children(t.root())[0];
        assert_eq!(t.children(first).len(), 2);
    }

    #[test]
    fn parses_text_values() {
        let d = samples::dept();
        let t = parse_xml(
            &d,
            "<dept><course><cno>cs66</cno><title>db</title><prereq/><takenBy/></course></dept>",
        )
        .unwrap();
        let course = t.children(t.root())[0];
        let cno = t.children(course)[0];
        assert_eq!(t.value(cno), Some("cs66"));
    }

    #[test]
    fn prolog_comments_doctype() {
        let d = samples::dept_simplified();
        let t = parse_xml(
            &d,
            "<?xml version=\"1.0\"?><!-- c --><!DOCTYPE dept [<!ELEMENT dept (course*)>]><dept><!-- x --><course/></dept>",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn entities_unescaped() {
        let d = samples::dept();
        let t = parse_xml(
            &d,
            "<dept><course><cno>a &amp; b &lt;3</cno><title/><prereq/><takenBy/></course></dept>",
        )
        .unwrap();
        let course = t.children(t.root())[0];
        let cno = t.children(course)[0];
        assert_eq!(t.value(cno), Some("a & b <3"));
    }

    #[test]
    fn unknown_element_rejected() {
        let d = samples::dept_simplified();
        let err = parse_xml(&d, "<dept><zzz/></dept>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownElement { .. }));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let d = samples::dept_simplified();
        let err = parse_xml(&d, "<dept><course></dept></course>").unwrap_err();
        assert!(matches!(err, XmlError::Mismatched { .. }));
    }

    #[test]
    fn attributes_rejected() {
        let d = samples::dept_simplified();
        assert!(parse_xml(&d, "<dept id=\"1\"/>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let d = samples::dept_simplified();
        assert!(parse_xml(&d, "<dept/><dept/>").is_err());
    }
}
