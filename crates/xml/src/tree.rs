//! Arena-allocated XML trees.

use x2s_dtd::ElemId;

/// Identifier of a node within one [`Tree`] (dense arena index).
///
/// Node ids play the role of the paper's unique element ids (`d1`, `c1`, …)
/// and become the `F`/`T` values of shredded relations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct Node {
    label: ElemId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    value: Option<Box<str>>,
}

/// An ordered, labelled tree with optional text values.
///
/// The root element is conceptually the single child of a *virtual document
/// node*; the document node itself is not stored (shredding represents it as
/// the parent id `'_'`, see `x2s-shred`).
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// Create a tree containing just a root element.
    pub fn with_root(label: ElemId) -> Self {
        Tree {
            nodes: vec![Node {
                label,
                parent: None,
                children: Vec::new(),
                value: None,
            }],
            root: NodeId(0),
        }
    }

    /// The root element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never true: a root always exists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Element type of `n`.
    #[inline]
    pub fn label(&self, n: NodeId) -> ElemId {
        self.nodes[n.index()].label
    }

    /// Parent of `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Children of `n` in document order.
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Text value `v.val` of `n`, if any.
    #[inline]
    pub fn value(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.index()].value.as_deref()
    }

    /// Set (or clear) the text value of `n`.
    pub fn set_value(&mut self, n: NodeId, value: Option<&str>) {
        self.nodes[n.index()].value = value.map(Box::from);
    }

    /// Append a new child with the given label under `parent`.
    pub fn add_child(&mut self, parent: NodeId, label: ElemId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label,
            parent: Some(parent),
            children: Vec::new(),
            value: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// All node ids in arena order (which is creation order; for generated
    /// and parsed trees this is a valid top-down order: parents precede
    /// children).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes in document (pre-)order.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // push children reversed so the leftmost is visited first
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Strict descendants of `n` in document order.
    pub fn descendants(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(n).iter().rev().copied().collect();
        while let Some(m) = stack.pop() {
            out.push(m);
            for &c in self.children(m).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of `n` (root = 1, matching the generator's "levels").
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 1;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        self.node_ids().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Number of nodes with the given label.
    pub fn count_label(&self, label: ElemId) -> usize {
        self.nodes.iter().filter(|n| n.label == label).count()
    }

    /// Keep only the first `keep` nodes in BFS order (the paper's trimming of
    /// excessively large generated trees, §6). The kept set is prefix-closed
    /// under parents, so the result is still a tree. Node ids are reassigned
    /// densely; returns the new tree.
    pub fn trim_bfs(&self, keep: usize) -> Tree {
        assert!(keep >= 1, "must keep at least the root");
        let mut order = Vec::with_capacity(self.len().min(keep));
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(n) = queue.pop_front() {
            if order.len() >= keep {
                break;
            }
            order.push(n);
            for &c in self.children(n) {
                queue.push_back(c);
            }
        }
        let mut remap = vec![u32::MAX; self.len()];
        for (new, old) in order.iter().enumerate() {
            remap[old.index()] = new as u32;
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &old in &order {
            let src = &self.nodes[old.index()];
            nodes.push(Node {
                label: src.label,
                parent: src.parent.map(|p| NodeId(remap[p.index()])),
                children: src
                    .children
                    .iter()
                    .filter(|c| remap[c.index()] != u32::MAX)
                    .map(|c| NodeId(remap[c.index()]))
                    .collect(),
                value: src.value.clone(),
            });
        }
        Tree {
            nodes,
            root: NodeId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2s_dtd::{DtdBuilder, ModelSpec};

    fn two_labels() -> (ElemId, ElemId) {
        let d = DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("b"))
            .elem("b", ModelSpec::Empty)
            .build()
            .unwrap();
        (d.elem("a").unwrap(), d.elem("b").unwrap())
    }

    #[test]
    fn build_and_navigate() {
        let (a, b) = two_labels();
        let mut t = Tree::with_root(a);
        let c1 = t.add_child(t.root(), b);
        let c2 = t.add_child(t.root(), b);
        let g = t.add_child(c1, b);
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(t.root()), &[c1, c2]);
        assert_eq!(t.parent(g), Some(c1));
        assert_eq!(t.label(g), b);
        assert_eq!(t.depth(g), 3);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn values() {
        let (a, _) = two_labels();
        let mut t = Tree::with_root(a);
        assert_eq!(t.value(t.root()), None);
        t.set_value(t.root(), Some("cs66"));
        assert_eq!(t.value(t.root()), Some("cs66"));
        t.set_value(t.root(), None);
        assert_eq!(t.value(t.root()), None);
    }

    #[test]
    fn preorder_and_descendants() {
        let (a, b) = two_labels();
        let mut t = Tree::with_root(a);
        let c1 = t.add_child(t.root(), b);
        let c2 = t.add_child(t.root(), b);
        let g1 = t.add_child(c1, b);
        assert_eq!(t.preorder(), vec![t.root(), c1, g1, c2]);
        assert_eq!(t.descendants(t.root()), vec![c1, g1, c2]);
        assert_eq!(t.descendants(c2), vec![]);
    }

    #[test]
    fn count_label() {
        let (a, b) = two_labels();
        let mut t = Tree::with_root(a);
        t.add_child(t.root(), b);
        t.add_child(t.root(), b);
        assert_eq!(t.count_label(b), 2);
        assert_eq!(t.count_label(a), 1);
    }

    #[test]
    fn trim_bfs_keeps_prefix() {
        let (a, b) = two_labels();
        let mut t = Tree::with_root(a);
        let c1 = t.add_child(t.root(), b);
        let _c2 = t.add_child(t.root(), b);
        let _g1 = t.add_child(c1, b);
        // BFS order: root, c1, c2, g1 — keep 3 drops g1
        let trimmed = t.trim_bfs(3);
        assert_eq!(trimmed.len(), 3);
        assert_eq!(trimmed.children(trimmed.root()).len(), 2);
        for n in trimmed.node_ids() {
            if let Some(p) = trimmed.parent(n) {
                assert!(trimmed.children(p).contains(&n));
            }
        }
    }

    #[test]
    fn trim_larger_than_tree_is_identity() {
        let (a, b) = two_labels();
        let mut t = Tree::with_root(a);
        t.add_child(t.root(), b);
        let trimmed = t.trim_bfs(100);
        assert_eq!(trimmed.len(), 2);
    }
}
