#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! XML document store for the `xpath2sql` reproduction.
//!
//! * [`Tree`] — an arena-allocated ordered labelled tree with optional text
//!   values per element (paper §2.1: "an element v may possibly carry a text
//!   value (PCDATA) denoted by v.val");
//! * [`parser`] / [`writer`] — a minimal XML reader/writer for documents over
//!   a given DTD (elements and text only; the paper does not consider
//!   attributes);
//! * [`validate`](mod@validate) — content-model conformance checking via Brzozowski
//!   derivatives (an "xml tree of the dtd" is a document conforming to it);
//! * [`generator`] — a reimplementation of the IBM AlphaWorks XML Generator
//!   semantics the paper's evaluation relies on (§6 "Testing data"):
//!   `X_L` bounds tree depth (beyond it only required children are emitted),
//!   `X_R` bounds the repetition of starred/`+` children, and oversized
//!   trees are trimmed to an exact element count in BFS order.

pub mod generator;
pub mod parser;
pub mod rng;
pub mod tree;
pub mod validate;
pub mod writer;

pub use generator::{Generator, GeneratorConfig};
pub use parser::{parse_xml, XmlError};
pub use tree::{NodeId, Tree};
pub use validate::{validate, ValidationError};
pub use writer::{paper_ids, to_xml_string};
