//! Criterion micro-benchmarks for Exp-4 / Fig. 17: `Even//Data` on the
//! 9-cycle GedML graph under varying tree shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use x2s_bench::{dataset, measure, Approach};
use x2s_dtd::samples;

fn bench_fig17(c: &mut Criterion) {
    let dtd = samples::gedml();
    let mut group = c.benchmark_group("fig17/Even_desc_Data");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    // (a) vary X_L at X_R = 6 (sizes scaled from the paper's)
    for (xl, elements) in [(13usize, 30_000usize), (14, 60_000), (15, 90_000)] {
        let ds = dataset(&dtd, xl, 6, Some(elements), 13);
        for approach in Approach::all() {
            group.bench_with_input(
                BenchmarkId::new(format!("XL/{}", approach.label()), xl),
                &ds,
                |b, ds| b.iter(|| measure(approach, &dtd, "Even//Data", &ds.db, 1).answers),
            );
        }
    }
    // (b) vary X_R at X_L = 16
    for (xr, elements) in [(6usize, 30_000usize), (7, 60_000), (8, 120_000)] {
        let ds = dataset(&dtd, 16, xr, Some(elements), 17);
        for approach in Approach::all() {
            group.bench_with_input(
                BenchmarkId::new(format!("XR/{}", approach.label()), xr),
                &ds,
                |b, ds| b.iter(|| measure(approach, &dtd, "Even//Data", &ds.db, 1).answers),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
