//! Criterion micro-benchmarks for Exp-3 (Fig. 14): scalability of `a//d`
//! on Cross with growing dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use x2s_bench::{dataset, measure, Approach};
use x2s_dtd::samples;

fn bench_fig14(c: &mut Criterion) {
    let dtd = samples::cross();
    let mut group = c.benchmark_group("fig14/a_desc_d");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for elements in [15_000usize, 30_000, 60_000, 120_000] {
        let ds = dataset(&dtd, 16, 4, Some(elements), 7);
        group.throughput(Throughput::Elements(elements as u64));
        for approach in Approach::all() {
            group.bench_with_input(
                BenchmarkId::new(approach.label(), elements),
                &ds,
                |b, ds| b.iter(|| measure(approach, &dtd, "a//d", &ds.db, 1).answers),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
