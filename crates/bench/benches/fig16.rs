//! Criterion micro-benchmarks for Exp-4 / Table 4 / Fig. 16: BIOML subgraph
//! cases over one dataset generated from the full 4-cycle graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use x2s_bench::{dataset, measure, Approach};
use x2s_dtd::samples;

const ELEMENTS: usize = 100_000;

fn bench_fig16(c: &mut Criterion) {
    let full = samples::bioml_d();
    let ds = dataset(&full, 16, 6, Some(ELEMENTS), 3);
    let cases = [
        ("2a", "gene//locus", samples::bioml_a()),
        ("2c", "gene//dna", samples::bioml_b()),
        ("3a", "gene//locus", samples::bioml_c()),
        ("4a", "gene//locus", samples::bioml_d()),
        ("4b", "gene//dna", samples::bioml_d()),
    ];
    let mut group = c.benchmark_group("fig16/bioml");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (case, query, dtd) in cases {
        for approach in Approach::all() {
            group.bench_with_input(BenchmarkId::new(approach.label(), case), &ds, |b, ds| {
                b.iter(|| measure(approach, &dtd, query, &ds.db, 1).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
