//! Criterion micro-benchmarks for Exp-2 (Fig. 13): pushing selections into
//! the LFP operator, varying the number of qualified nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use x2s_bench::dataset;
use x2s_bench::harness::measure_with_options;
use x2s_core::SqlOptions;
use x2s_dtd::samples;
use x2s_shred::edge_database;
use x2s_xml::generator::mark_values;

const ELEMENTS: usize = 50_000;

fn bench_fig13(c: &mut Criterion) {
    let dtd = samples::cross();
    let mut group = c.benchmark_group("fig13/Qe_selection_on_a");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for marked in [100usize, 1_000, 10_000] {
        let mut ds = dataset(&dtd, 12, 8, Some(ELEMENTS), 77);
        let a = dtd.elem("a").unwrap();
        mark_values(&mut ds.tree, a, marked, "sel", 99);
        let db = edge_database(&ds.tree, &dtd);
        for (label, push) in [("push", true), ("plain", false)] {
            let opts = SqlOptions {
                push_selections: push,
                root_filter_pushdown: push,
                ..SqlOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(label, marked), &db, |b, db| {
                b.iter(|| measure_with_options(&dtd, "a[text()='sel']/b//c/d", db, opts, 1).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
