//! Approaches, datasets, and measurement — single-shot timings for the
//! paper's figures, plus a multi-worker throughput harness for the serving
//! path (M threads × K prepared queries against one shared [`Engine`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use x2s_core::pipeline::{RecStrategy, TranslateError, Translation, Translator};
use x2s_core::{Engine, SqlOptions};
use x2s_dtd::Dtd;
use x2s_rel::{Database, ExecOptions, Stats};
use x2s_shred::edge_database;
use x2s_sqlgenr::SqlGenR;
use x2s_xml::{Generator, GeneratorConfig, Tree};
use x2s_xpath::{parse_xpath, Path};

/// The three compared approaches, labelled as in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// `R` — SQLGen-R \[39\]: SQL'99 multi-relation recursion.
    SqlGenR,
    /// `E` — our framework with Tarjan's CycleE for `rec(A,B)`.
    CycleE,
    /// `X` — our framework with CycleEX (the paper's proposal).
    CycleEx,
}

impl Approach {
    /// All three, in the paper's R/E/X order.
    pub fn all() -> [Approach; 3] {
        [Approach::SqlGenR, Approach::CycleE, Approach::CycleEx]
    }

    /// One-letter figure label.
    pub fn label(self) -> &'static str {
        match self {
            Approach::SqlGenR => "R",
            Approach::CycleE => "E",
            Approach::CycleEx => "X",
        }
    }
}

/// Cap for CycleE intermediate expressions in benchmarks: large enough for
/// every evaluation DTD, small enough to fail fast on adversarial inputs.
pub const CYCLEE_CAP: usize = 4_000_000;

/// Translate a query with one of the approaches.
pub fn translate_with(
    approach: Approach,
    dtd: &Dtd,
    path: &Path,
) -> Result<Translation, TranslateError> {
    match approach {
        Approach::SqlGenR => SqlGenR::new(dtd).translate(path),
        Approach::CycleE => Translator::new(dtd)
            .with_strategy(RecStrategy::CycleE { cap: CYCLEE_CAP })
            .translate(path),
        Approach::CycleEx => Translator::new(dtd)
            .with_strategy(RecStrategy::CycleEx)
            .translate(path),
    }
}

/// Translate with explicit SQL options (Exp-2's push-selection toggle);
/// only meaningful for the CycleEX approach.
pub fn translate_cycleex_with_options(
    dtd: &Dtd,
    path: &Path,
    opts: SqlOptions,
) -> Result<Translation, TranslateError> {
    Translator::new(dtd).with_sql_options(opts).translate(path)
}

/// A generated dataset: the XML tree and its edge-shredded database.
pub struct Dataset {
    /// The document.
    pub tree: Tree,
    /// Its shredded relational store.
    pub db: Database,
}

/// Generate a dataset following the paper's protocol: IBM-generator
/// semantics with `X_L`/`X_R`, trimmed/budgeted to `target` elements.
pub fn dataset(dtd: &Dtd, xl: usize, xr: usize, target: Option<usize>, seed: u64) -> Dataset {
    let cfg = GeneratorConfig::shaped(xl, xr, target).with_seed(seed);
    let tree = Generator::new(dtd, cfg).generate();
    let db = edge_database(&tree, dtd);
    Dataset { tree, db }
}

/// One measured run.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Wall-clock time of translate + execute.
    pub elapsed: Duration,
    /// Engine statistics of the run.
    pub stats: Stats,
    /// Number of answer nodes.
    pub answers: usize,
}

impl Measured {
    /// Milliseconds, for table rendering.
    pub fn ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Execution options per approach: SQLGen-R's `WITH…RECURSIVE` is the
/// paper's Eq. (1) *black box* — "the relation in the center keeps growing,
/// but one can do little to optimize the operations inside" (§3.1) — so its
/// fixpoint re-joins the accumulated center relation each round (naive
/// iteration). The simple LFP approaches model `CONNECT BY`-style
/// hierarchical operators, which are delta-driven by construction.
pub fn exec_options_for(approach: Approach) -> ExecOptions {
    ExecOptions {
        naive_fixpoint: approach == Approach::SqlGenR,
        ..ExecOptions::default()
    }
}

/// Measure translate+execute `reps` times, returning the fastest run (the
/// standard way to suppress scheduler noise in single-shot timings).
pub fn measure(approach: Approach, dtd: &Dtd, query: &str, db: &Database, reps: usize) -> Measured {
    let path = parse_xpath(query).expect("benchmark queries parse");
    let mut best: Option<Measured> = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let tr = translate_with(approach, dtd, &path).expect("benchmark translations succeed");
        let mut stats = Stats::default();
        let answers = tr
            .try_run(db, exec_options_for(approach), &mut stats)
            .expect("benchmark programs execute")
            .len();
        let elapsed = started.elapsed();
        let m = Measured {
            elapsed,
            stats,
            answers,
        };
        if best.as_ref().is_none_or(|b| m.elapsed < b.elapsed) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

/// Measure the CycleEX approach with explicit SQL options (Exp-2).
pub fn measure_with_options(
    dtd: &Dtd,
    query: &str,
    db: &Database,
    opts: SqlOptions,
    reps: usize,
) -> Measured {
    let path = parse_xpath(query).expect("benchmark queries parse");
    let mut best: Option<Measured> = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let tr = translate_cycleex_with_options(dtd, &path, opts).expect("translates");
        let mut stats = Stats::default();
        let answers = tr
            .try_run(db, ExecOptions::default(), &mut stats)
            .expect("benchmark programs execute")
            .len();
        let elapsed = started.elapsed();
        let m = Measured {
            elapsed,
            stats,
            answers,
        };
        if best.as_ref().is_none_or(|b| m.elapsed < b.elapsed) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

/// An amortized measurement through the [`Engine`] session API: translate
/// once via `prepare` (one plan-cache miss), then execute the prepared query
/// `reps` times. `elapsed` is the fastest *execution* — what a serving
/// deployment pays per query once the plan cache is warm — and `stats` are
/// the engine's accumulated counters, including the cache hit/miss split.
pub fn measure_prepared(dtd: &Dtd, query: &str, db: &Database, reps: usize) -> Measured {
    measure_prepared_opts(dtd, query, db, reps, ExecOptions::default())
}

/// [`measure_prepared`] with explicit execution options — e.g.
/// `ExecOptions::default().with_threads(n)` to time the parallel LFP/join
/// paths. Copies the store once; repeated measurements over the same big
/// dataset should use [`measure_prepared_shared`].
pub fn measure_prepared_opts(
    dtd: &Dtd,
    query: &str,
    db: &Database,
    reps: usize,
    exec: ExecOptions,
) -> Measured {
    measure_prepared_shared(dtd, query, Arc::new(db.clone()), reps, exec)
}

/// [`measure_prepared_opts`] over an already-shared store: the engine
/// adopts the `Arc` without copying a single tuple.
pub fn measure_prepared_shared(
    dtd: &Dtd,
    query: &str,
    db: Arc<Database>,
    reps: usize,
    exec: ExecOptions,
) -> Measured {
    let mut engine = Engine::builder(dtd).exec_options(exec).build();
    engine.load_shared(db);
    let prepared = engine.prepare(query).expect("benchmark queries prepare");
    let mut best: Option<Duration> = None;
    let mut answers = 0;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        answers = prepared.execute().expect("prepared queries execute").len();
        let elapsed = started.elapsed();
        if best.is_none_or(|b| elapsed < b) {
            best = Some(elapsed);
        }
    }
    Measured {
        elapsed: best.expect("reps >= 1"),
        stats: engine.stats(),
        answers,
    }
}

/// Aggregate result of one multi-worker throughput run.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Worker threads that shared the engine.
    pub workers: usize,
    /// Total queries served across all workers.
    pub total_queries: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Engine statistics after the run (hit/miss split, exec counters).
    pub stats: Stats,
}

impl Throughput {
    /// Aggregate queries per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.total_queries as f64 / self.elapsed.as_secs_f64()
    }
}

/// Serving-path throughput: `workers` threads hammer ONE shared [`Engine`]
/// (sharded plan cache, atomic stats, `Arc`-shared store), each running
/// `rounds` passes over `queries` via `prepare` + `execute`. Workers start
/// at staggered offsets in the query list so they do not march over the
/// same cache shard in lockstep. Returns wall-clock aggregate QPS — the
/// number a serving deployment cares about.
pub fn measure_throughput(
    dtd: &Dtd,
    queries: &[&str],
    db: Arc<Database>,
    workers: usize,
    rounds: usize,
    exec: ExecOptions,
) -> Throughput {
    assert!(!queries.is_empty(), "throughput needs at least one query");
    let workers = workers.max(1);
    let rounds = rounds.max(1);
    let mut engine = Engine::builder(dtd).exec_options(exec).build();
    engine.load_shared(db);
    let engine = &engine;
    let total = AtomicU64::new(0);
    let started = Instant::now();
    thread::scope(|s| {
        for w in 0..workers {
            let total = &total;
            s.spawn(move || {
                let mut served = 0u64;
                for r in 0..rounds {
                    let offset = (w + r) % queries.len();
                    for qi in 0..queries.len() {
                        let q = queries[(offset + qi) % queries.len()];
                        let prepared = engine.prepare(q).expect("throughput queries prepare");
                        prepared.execute().expect("throughput queries execute");
                        served += 1;
                    }
                }
                total.fetch_add(served, Ordering::Relaxed);
            });
        }
    });
    Throughput {
        workers,
        total_queries: total.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        stats: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2s_dtd::samples;

    #[test]
    fn three_approaches_agree_on_cross() {
        let d = samples::cross();
        let ds = dataset(&d, 8, 3, Some(3_000), 11);
        let mut answers = Vec::new();
        for a in Approach::all() {
            let m = measure(a, &d, "a//d", &ds.db, 1);
            answers.push(m.answers);
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
        assert!(answers[0] > 0, "a//d finds something on a 3k-node tree");
    }

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let d = samples::cross();
        let a = dataset(&d, 10, 4, Some(2_000), 5);
        let b = dataset(&d, 10, 4, Some(2_000), 5);
        assert_eq!(a.tree.len(), 2_000);
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    }

    #[test]
    fn prepared_measurement_amortizes_translation() {
        let d = samples::cross();
        let ds = dataset(&d, 8, 3, Some(2_000), 11);
        let m = measure_prepared(&d, "a//d", &ds.db, 4);
        assert_eq!(m.stats.plan_cache_misses, 1, "one translation for 4 runs");
        assert_eq!(m.stats.plan_cache_hits, 0, "prepare was called once");
        let direct = measure(Approach::CycleEx, &d, "a//d", &ds.db, 1);
        assert_eq!(m.answers, direct.answers);
    }

    #[test]
    fn throughput_counts_every_query_and_every_prepare() {
        let d = samples::cross();
        let ds = dataset(&d, 8, 3, Some(1_500), 11);
        let queries = ["a//d", "a/b//c/d", "a//a"];
        let db = Arc::new(ds.db);
        let t = measure_throughput(&d, &queries, Arc::clone(&db), 3, 2, ExecOptions::default());
        assert_eq!(t.workers, 3);
        assert_eq!(t.total_queries, 3 * 2 * queries.len() as u64);
        assert_eq!(
            (t.stats.plan_cache_hits + t.stats.plan_cache_misses) as u64,
            t.total_queries,
            "every served query is exactly one prepare"
        );
        assert!(t.stats.plan_cache_misses >= queries.len());
        assert!(t.qps() > 0.0);
        // parallel-exec options produce the same accounting
        let tp = measure_throughput(
            &d,
            &queries,
            db,
            2,
            1,
            ExecOptions::default().with_threads(2),
        );
        assert_eq!(tp.total_queries, 2 * queries.len() as u64);
    }

    #[test]
    fn push_options_agree_with_plain() {
        let d = samples::cross();
        let ds = dataset(&d, 10, 4, Some(4_000), 7);
        let push = measure_with_options(
            &d,
            "a/b//c/d",
            &ds.db,
            SqlOptions {
                push_selections: true,
                root_filter_pushdown: true,
                ..SqlOptions::default()
            },
            1,
        );
        let plain = measure_with_options(
            &d,
            "a/b//c/d",
            &ds.db,
            SqlOptions {
                push_selections: false,
                root_filter_pushdown: false,
                ..SqlOptions::default()
            },
            1,
        );
        assert_eq!(push.answers, plain.answers);
    }
}
