//! Machine-readable perf trajectory: `repro bench --json` writes
//! `BENCH_5.json` so successive PRs can compare execute-phase wall-clock on
//! the same workloads without re-parsing markdown tables.
//!
//! Workloads are the Table-5 execute-phase set: recursive descendant queries
//! over generated Cross / GedML / dept documents, timed in two phases —
//! translate (XPath → SQL'(LFP), cold) and execute (prepared program against
//! the loaded store, warm) — the split the paper's evaluation turns on.
//! Alongside wall-clock the report records throughput (tuples emitted per
//! execute-second) and allocation-count proxies (tuples emitted, statements
//! evaluated, LFP iterations, peak closure size, cached-index reuses) so a
//! regression in *work done* is visible even when a faster machine hides it.

use crate::harness::dataset;
use crate::loadgen::{LoadMode, LoadReport};
use std::sync::Arc;
use std::time::Instant;
use x2s_core::{Engine, Translator};
use x2s_dtd::{samples, Dtd};
use x2s_rel::{ExecOptions, Stats};
use x2s_xpath::parse_xpath;

/// One benchmark workload: a query over a generated document.
pub struct BenchCase {
    /// Short name for the JSON record.
    pub name: &'static str,
    /// Sample DTD name.
    pub dtd: &'static str,
    /// The XPath query.
    pub query: &'static str,
    /// Generator shape (X_L, X_R) and unscaled element target.
    pub shape: (usize, usize, usize),
    /// Generator seed.
    pub seed: u64,
}

/// The Table-5 execute-phase workload set (paper §6 shapes).
pub fn bench_cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "dept//project",
            dtd: "dept_simplified",
            query: "dept//project",
            shape: (12, 4, 120_000),
            seed: 42,
        },
        BenchCase {
            name: "dept//course[project or student]",
            dtd: "dept_simplified",
            query: "dept//course[project or student]",
            shape: (12, 4, 120_000),
            seed: 42,
        },
        BenchCase {
            name: "cross a//d",
            dtd: "cross",
            query: "a//d",
            shape: (16, 4, 120_000),
            seed: 7,
        },
        BenchCase {
            name: "cross a/b//c/d",
            dtd: "cross",
            query: "a/b//c/d",
            shape: (12, 4, 120_000),
            seed: 42,
        },
        BenchCase {
            name: "gedml Even//Data",
            dtd: "gedml",
            query: "Even//Data",
            shape: (13, 6, 286_845),
            seed: 13,
        },
        BenchCase {
            name: "gedml Even//Obje[Sour]",
            dtd: "gedml",
            query: "Even//Obje[Sour]",
            shape: (13, 6, 286_845),
            seed: 13,
        },
    ]
}

fn sample_dtd(name: &str) -> Dtd {
    match name {
        "dept_simplified" => samples::dept_simplified(),
        "cross" => samples::cross(),
        "gedml" => samples::gedml(),
        "bioml" => samples::bioml(),
        other => panic!("unknown bench dtd {other}"),
    }
}

/// One measured workload record. Each workload is executed **both ways**
/// when the query admits the interval fast path: once with the interval
/// rewrite disabled (`execute_ms`, the LFP baseline every earlier PR
/// reported) and once with it enabled (`interval_execute_ms`) — an honest
/// ablation, same store, same prepared-plan warmup, answers asserted equal.
pub struct BenchRecord {
    /// Workload name.
    pub name: String,
    /// The query.
    pub query: String,
    /// Elements in the generated document.
    pub elements: usize,
    /// Translate wall-clock (fastest of reps), milliseconds.
    pub translate_ms: f64,
    /// Execute wall-clock (fastest of reps, warm prepared query), ms —
    /// the LFP path (interval rewrite disabled), comparable across PRs.
    pub execute_ms: f64,
    /// Execute wall-clock with the interval fast path, ms. `None` when the
    /// query has no rewritable `rec(A, B)` (no `//` reaching elements).
    pub interval_execute_ms: Option<f64>,
    /// `IntervalJoin` nodes in the rewritten program (0 when `None` above).
    pub interval_rewrites: usize,
    /// Sorted-view entries scanned by the interval run (its work proxy).
    pub interval_rows_scanned: u64,
    /// Answer nodes (asserted identical across both paths).
    pub answers: usize,
    /// Tuples emitted by one LFP-path execution (work proxy).
    pub tuples_emitted: u64,
    /// Tuples emitted by one interval-path execution — near the answer
    /// count, since no closure is materialized.
    pub interval_tuples_emitted: u64,
    /// Tuples emitted per execute-second (throughput, LFP path).
    pub rows_per_sec: f64,
    /// Largest closure materialized by any LFP in one execution.
    pub peak_closure: usize,
    /// Largest closure on the interval path (0 when the rewrite covers
    /// every fixpoint of the program).
    pub interval_peak_closure: usize,
    /// Total LFP iterations in one execution.
    pub lfp_iterations: usize,
    /// Statements evaluated (allocation-count proxy: one relation each).
    pub stmts_evaluated: usize,
    /// Joins served from a cached base-edge index (no build table allocated).
    pub join_index_reuses: usize,
}

impl BenchRecord {
    /// LFP-over-interval execute speedup (`None` without an interval run).
    pub fn interval_speedup(&self) -> Option<f64> {
        let iv = self.interval_execute_ms?;
        if iv <= 0.0 {
            return None;
        }
        Some(self.execute_ms / iv)
    }
}

/// Run every workload at `scale` with `reps` repetitions (fastest kept) and
/// `threads` executor workers.
pub fn bench_all(scale: f64, reps: usize, threads: usize) -> Vec<BenchRecord> {
    let exec = ExecOptions::default().with_threads(threads);
    bench_cases()
        .iter()
        .map(|c| bench_one(c, scale, reps, exec))
        .collect()
}

/// One warm execute-phase measurement: prepared query against the shared
/// store, fastest of `reps`, stats of the fastest run.
fn execute_phase(
    dtd: &Dtd,
    query: &str,
    db: &Arc<x2s_rel::Database>,
    reps: usize,
    exec: ExecOptions,
) -> (f64, usize, Stats) {
    let mut engine = Engine::builder(dtd).exec_options(exec).build();
    engine.load_shared(Arc::clone(db));
    let prepared = engine.prepare(query).expect("bench queries prepare");
    let mut execute_ms = f64::INFINITY;
    let mut answers = 0usize;
    let mut best_stats = Stats::default();
    for _ in 0..reps.max(1) {
        engine.reset_stats();
        let started = Instant::now();
        answers = prepared.execute().expect("bench queries execute").len();
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        if elapsed < execute_ms {
            execute_ms = elapsed;
            best_stats = engine.stats();
        }
    }
    (execute_ms, answers, best_stats)
}

fn bench_one(case: &BenchCase, scale: f64, reps: usize, exec: ExecOptions) -> BenchRecord {
    let dtd = sample_dtd(case.dtd);
    let (xl, xr, elements) = case.shape;
    let target = ((elements as f64 * scale) as usize).max(500);
    // Starred roots can produce near-empty documents for an unlucky seed
    // (the generator budget never forces expansion); retry a few seeds so
    // every workload actually exercises the execute phase.
    let ds = (0..16)
        .map(|s| dataset(&dtd, xl, xr, Some(target), case.seed + s))
        .find(|ds| ds.tree.len() >= target / 4)
        .unwrap_or_else(|| dataset(&dtd, xl, xr, Some(target), case.seed));
    let elements = ds.tree.len();
    let path = parse_xpath(case.query).expect("bench queries parse");

    // Phase 1: translate, cold each rep.
    let mut translate_ms = f64::INFINITY;
    let mut has_interval_variant = false;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let tr = Translator::new(&dtd).translate(&path).expect("translates");
        translate_ms = translate_ms.min(started.elapsed().as_secs_f64() * 1e3);
        has_interval_variant = tr.interval.is_some();
        std::hint::black_box(&tr.program);
    }

    // Phase 2: execute both ways against the same shared store — the LFP
    // baseline first (comparable to earlier PRs), then the interval fast
    // path when the translation admits one.
    let db = Arc::new(ds.db);
    let (execute_ms, answers, lfp_stats) =
        execute_phase(&dtd, case.query, &db, reps, exec.with_interval(false));
    let (interval_execute_ms, interval_stats) = if has_interval_variant {
        let (ms, iv_answers, stats) =
            execute_phase(&dtd, case.query, &db, reps, exec.with_interval(true));
        assert_eq!(iv_answers, answers, "{}: interval path diverged", case.name);
        assert!(
            stats.interval_rewrites > 0,
            "{}: interval variant compiled but never selected",
            case.name
        );
        (Some(ms), stats)
    } else {
        (None, Stats::default())
    };
    let rows_per_sec = if execute_ms > 0.0 {
        lfp_stats.tuples_emitted as f64 / (execute_ms / 1e3)
    } else {
        0.0
    };
    BenchRecord {
        name: case.name.to_string(),
        query: case.query.to_string(),
        elements,
        translate_ms,
        execute_ms,
        interval_execute_ms,
        interval_rewrites: interval_stats.interval_rewrites,
        interval_rows_scanned: interval_stats.interval_rows_scanned,
        answers,
        tuples_emitted: lfp_stats.tuples_emitted,
        interval_tuples_emitted: interval_stats.tuples_emitted,
        rows_per_sec,
        peak_closure: lfp_stats.lfp_peak_closure,
        interval_peak_closure: interval_stats.lfp_peak_closure,
        lfp_iterations: lfp_stats.lfp_iterations,
        stmts_evaluated: lfp_stats.stmts_evaluated,
        join_index_reuses: lfp_stats.join_index_reuses,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a closed-/open-loop serving [`LoadReport`] as the `"serving"`
/// object of the bench document.
fn serving_json(r: &LoadReport, indent: &str) -> String {
    let (mode, target_qps) = match r.mode {
        LoadMode::Closed => ("closed", 0.0),
        LoadMode::Open { target_qps } => ("open", target_qps),
    };
    let mut out = String::new();
    out.push_str("{\n");
    let mut field = |name: &str, value: String, last: bool| {
        out.push_str(&format!(
            "{indent}  \"{name}\": {value}{}\n",
            if last { "" } else { "," }
        ));
    };
    field("mode", json_str(mode), false);
    field("target_qps", format!("{target_qps:.1}"), false);
    field("workers", r.workers.to_string(), false);
    field("distinct_queries", r.distinct_queries.to_string(), false);
    field("total_requests", r.total_requests.to_string(), false);
    field("errors", r.errors.to_string(), false);
    field(
        "elapsed_ms",
        format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
        false,
    );
    field("qps", format!("{:.1}", r.qps), false);
    field("p50_ms", format!("{:.3}", r.p50_ms), false);
    field("p95_ms", format!("{:.3}", r.p95_ms), false);
    field("p99_ms", format!("{:.3}", r.p99_ms), false);
    field("max_ms", format!("{:.3}", r.max_ms), false);
    field("rejected", r.rejected.to_string(), false);
    field("coalesced", r.coalesced.to_string(), false);
    field("flights", r.flights.to_string(), false);
    field("sat_checked", r.sat_checks.to_string(), false);
    field("sat_pruned", r.pruned.to_string(), false);
    field("timed_out", r.timed_out.to_string(), false);
    field("coalesce_rate", format!("{:.4}", r.coalesce_rate), true);
    out.push_str(&format!("{indent}}}"));
    out
}

/// Render the records as the `BENCH_5.json` document (pretty-printed,
/// hand-rolled — the image has no serde). `serving` adds the closed-loop
/// load-harness section (p50/p95/p99, coalesce/rejection rates) when a
/// load run accompanied the workloads.
pub fn bench_json(
    records: &[BenchRecord],
    scale: f64,
    reps: usize,
    threads: usize,
    serving: Option<&LoadReport>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"pr\": 9,\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    if let Some(report) = serving {
        out.push_str(&format!("  \"serving\": {},\n", serving_json(report, "  ")));
    }
    out.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(&r.name)));
        out.push_str(&format!("      \"query\": {},\n", json_str(&r.query)));
        out.push_str(&format!("      \"elements\": {},\n", r.elements));
        out.push_str(&format!("      \"translate_ms\": {:.3},\n", r.translate_ms));
        out.push_str(&format!("      \"execute_ms\": {:.3},\n", r.execute_ms));
        match r.interval_execute_ms {
            Some(ms) => {
                out.push_str(&format!("      \"interval_execute_ms\": {ms:.3},\n"));
                out.push_str(&format!(
                    "      \"interval_speedup\": {:.2},\n",
                    r.interval_speedup().unwrap_or(0.0)
                ));
            }
            None => out.push_str("      \"interval_execute_ms\": null,\n"),
        }
        out.push_str(&format!(
            "      \"interval_rewrites\": {},\n",
            r.interval_rewrites
        ));
        out.push_str(&format!(
            "      \"interval_rows_scanned\": {},\n",
            r.interval_rows_scanned
        ));
        out.push_str(&format!(
            "      \"interval_tuples_emitted\": {},\n",
            r.interval_tuples_emitted
        ));
        out.push_str(&format!(
            "      \"interval_peak_closure\": {},\n",
            r.interval_peak_closure
        ));
        out.push_str(&format!("      \"answers\": {},\n", r.answers));
        out.push_str(&format!(
            "      \"tuples_emitted\": {},\n",
            r.tuples_emitted
        ));
        out.push_str(&format!("      \"rows_per_sec\": {:.0},\n", r.rows_per_sec));
        out.push_str(&format!("      \"peak_closure\": {},\n", r.peak_closure));
        out.push_str(&format!(
            "      \"lfp_iterations\": {},\n",
            r.lfp_iterations
        ));
        out.push_str(&format!(
            "      \"stmts_evaluated\": {},\n",
            r.stmts_evaluated
        ));
        out.push_str(&format!(
            "      \"join_index_reuses\": {}\n",
            r.join_index_reuses
        ));
        out.push_str(if i + 1 == records.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render records as a printable summary table (the non-`--json` mode).
pub fn bench_table(records: &[BenchRecord]) -> crate::workloads::Table {
    crate::workloads::Table {
        title: "Perf trajectory — Table-5 execute-phase workloads (LFP vs interval)".into(),
        headers: vec![
            "workload".into(),
            "elements".into(),
            "translate (ms)".into(),
            "lfp exec (ms)".into(),
            "interval exec (ms)".into(),
            "speedup".into(),
            "answers".into(),
            "peak closure".into(),
            "idx reuses".into(),
        ],
        rows: records
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.elements.to_string(),
                    format!("{:.1}", r.translate_ms),
                    format!("{:.1}", r.execute_ms),
                    r.interval_execute_ms
                        .map(|ms| format!("{ms:.1}"))
                        .unwrap_or_else(|| "—".into()),
                    r.interval_speedup()
                        .map(|s| format!("{s:.1}×"))
                        .unwrap_or_else(|| "—".into()),
                    r.answers.to_string(),
                    r.peak_closure.to_string(),
                    r.join_index_reuses.to_string(),
                ]
            })
            .collect(),
        note: "fastest of N reps; execute is warm (prepared plan, loaded store); \
               interval column is the pre/post range-join fast path on the same store"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_parseable_shape() {
        let recs = bench_all(0.005, 1, 1);
        assert_eq!(recs.len(), bench_cases().len());
        let json = bench_json(&recs, 0.005, 1, 1, None);
        // cheap structural checks without a JSON parser
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"name\":").count(), recs.len());
        assert_eq!(json.matches("\"interval_execute_ms\":").count(), recs.len());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        for r in &recs {
            assert!(r.execute_ms >= 0.0 && r.translate_ms >= 0.0);
        }
        // every Table-5 workload here has a `//` step reaching elements, so
        // each record carries the ablation with at least one rewrite
        assert!(
            recs.iter()
                .all(|r| r.interval_execute_ms.is_some() && r.interval_rewrites > 0),
            "descendant workloads all take the interval fast path"
        );
        let table = bench_table(&recs);
        assert_eq!(table.rows.len(), recs.len());
    }

    #[test]
    fn serving_section_round_trips_the_report_fields() {
        use std::time::Duration;
        let report = LoadReport {
            mode: LoadMode::Closed,
            workers: 8,
            distinct_queries: 2,
            total_requests: 100,
            errors: 0,
            elapsed: Duration::from_millis(500),
            qps: 200.0,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.0,
            max_ms: 5.0,
            rejected: 0,
            coalesced: 60,
            flights: 40,
            sat_checks: 40,
            pruned: 0,
            timed_out: 0,
            coalesce_rate: 0.6,
        };
        let json = bench_json(&[], 0.1, 1, 1, Some(&report));
        assert!(json.contains("\"serving\": {"));
        assert!(json.contains("\"mode\": \"closed\""));
        assert!(json.contains("\"p99_ms\": 4.000"));
        assert!(json.contains("\"coalesce_rate\": 0.6000"));
        assert!(json.contains("\"rejected\": 0"));
        assert!(json.contains("\"timed_out\": 0"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
