//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [all|exp1|exp2|exp3|exp4|exp5|table5|tables123] [--scale F] [--reps N]
//! ```
//!
//! `--scale 1.0` uses the paper's element counts (minutes of runtime);
//! the default 0.25 preserves every qualitative shape at laptop scale.

use std::env;
use x2s_bench::{exp1, exp2, exp3, exp4, exp5, table5, tables123, Table};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = 0.25f64;
    let mut reps = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    println!("# xpath2sql — regenerated evaluation artifacts");
    println!("scale = {scale}, reps = {reps} (fastest of N timings per cell)\n");

    let run_all = which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || which.iter().any(|w| w == name);

    if wants("tables123") {
        emit("Tables 1–3 (running example)", tables123());
    }
    if wants("table5") {
        emit("Table 5 (operator counts)", table5());
    }
    if wants("exp1") {
        emit("Exp-1 (Fig. 12)", exp1(scale, reps));
    }
    if wants("exp2") {
        emit("Exp-2 (Fig. 13)", exp2(scale, reps));
    }
    if wants("exp3") {
        emit("Exp-3 (Fig. 14)", exp3(scale, reps));
    }
    if wants("exp4") {
        emit("Exp-4 (Table 4 / Fig. 16)", exp4(scale, reps));
    }
    if wants("exp5") {
        emit("Exp-4 (Fig. 17)", exp5(scale, reps));
    }
}

fn emit(section: &str, tables: Vec<Table>) {
    println!("\n## {section}");
    for t in tables {
        print!("{t}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [all|exp1|exp2|exp3|exp4|exp5|table5|tables123]… [--scale F] [--reps N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
