//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [all|sql|opt|analyze|satcheck|bench|throughput|exp1|exp2|exp3|exp4|exp5|table5|tables123]
//!       [--scale F] [--reps N] [--threads N] [--dtd NAME] [--query XPATH]
//!       [--quick] [--json]
//! ```
//!
//! `--scale 1.0` uses the paper's element counts (minutes of runtime);
//! the default 0.25 preserves every qualitative shape at laptop scale.
//! `--quick` forces the smallest useful configuration (scale 0.02, one
//! rep) so CI can smoke-run every section without real benchmarking cost.
//! The `opt` section is the logical-optimizer ablation: Table-5 operator
//! counts and native-exec timings with the optimizer on vs off.
//! The `analyze` section runs the static plan analyzer over every Table-5
//! workload program (optimizer off and on) and prints the inferred result
//! schemas — zero diagnostics expected.
//! The `satcheck` section runs the DTD-aware satisfiability gate over the
//! Table-5 queries plus a seeded random corpus: verdicts, witnesses, prune
//! rate, per-check time, with every Empty verdict soundness-checked
//! against the native oracle.
//! The `sql` section translates `--query` (default `dept//project`) over
//! `--dtd` (default `dept`) and prints the generated SQL'(LFP) script before
//! executing it against a freshly generated document.
//!
//! `--threads N` (default: available parallelism, capped at 8) sizes the
//! `throughput` section: N worker threads share one `Engine` on the
//! fig12-style closure workload (aggregate QPS + speedup over 1 worker),
//! and the parallel-LFP ablation compares `ExecOptions::threads` 1 vs N on
//! one warm prepared query. `1` forces everything single-threaded.

use std::env;
use x2s_bench::{
    analyze_report, bench_all, bench_json, bench_table, exp1, exp2, exp3, exp4, exp5, load_harness,
    measure_prepared, opt_ablation, quick_load, satcheck_report, table5, tables123, throughput,
    Table,
};
use x2s_core::Engine;
use x2s_dtd::{samples, Dtd};
use x2s_rel::SqlDialect;
use x2s_xml::{Generator, GeneratorConfig};

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = 0.25f64;
    let mut reps = 3usize;
    let mut threads = default_threads();
    let mut dtd_name = "dept".to_string();
    let mut query = "dept//project".to_string();
    let mut quick = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs an integer"));
            }
            "--dtd" => {
                i += 1;
                dtd_name = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--dtd needs a sample name"));
            }
            "--query" => {
                i += 1;
                query = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--query needs an XPath expression"));
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs an integer"));
            }
            "--json" => json = true,
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    if quick {
        // applied after the parse loop so it wins regardless of flag order:
        // --quick *forces* the smallest useful configuration
        scale = 0.02;
        reps = 1;
    }

    println!("# xpath2sql — regenerated evaluation artifacts");
    println!(
        "scale = {scale}, reps = {reps} (fastest of N timings per cell), threads = {threads}\n"
    );

    let run_all = which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || which.iter().any(|w| w == name);

    if wants("sql") {
        sql_section(&dtd_name, &query);
    }
    if which.iter().any(|w| w == "bench") {
        bench_section(scale, reps, threads, json);
    }
    if wants("opt") {
        emit("Optimizer ablation (on vs off)", opt_ablation(scale, reps));
    }
    if wants("analyze") {
        emit(
            "Static analysis (schema inference + well-formedness)",
            analyze_report(),
        );
    }
    if wants("satcheck") {
        emit(
            "Satisfiability gate (verdicts, witnesses, prune rate)",
            satcheck_report(),
        );
    }
    if wants("throughput") {
        emit(
            &format!("Throughput (concurrent serving, --threads {threads})"),
            throughput(scale, threads),
        );
        emit(
            "Serving load harness (closed/open loop, single-flight coalescing)",
            load_harness(scale, threads),
        );
    }
    if wants("tables123") {
        emit("Tables 1–3 (running example)", tables123());
    }
    if wants("table5") {
        emit("Table 5 (operator counts)", table5());
    }
    if wants("exp1") {
        emit("Exp-1 (Fig. 12)", exp1(scale, reps));
    }
    if wants("exp2") {
        emit("Exp-2 (Fig. 13)", exp2(scale, reps));
    }
    if wants("exp3") {
        emit("Exp-3 (Fig. 14)", exp3(scale, reps));
    }
    if wants("exp4") {
        emit("Exp-4 (Table 4 / Fig. 16)", exp4(scale, reps));
    }
    if wants("exp5") {
        emit("Exp-4 (Fig. 17)", exp5(scale, reps));
    }
}

/// Resolve a sample-DTD name from `x2s_dtd::samples`.
fn sample_dtd(name: &str) -> Dtd {
    match name {
        "dept" => samples::dept(),
        "dept_simplified" => samples::dept_simplified(),
        "cross" => samples::cross(),
        "bioml" => samples::bioml(),
        "gedml" => samples::gedml(),
        other => usage(&format!(
            "unknown sample dtd {other:?} (try dept, dept_simplified, cross, bioml, gedml)"
        )),
    }
}

/// Translate one query end-to-end through the [`Engine`] session API, print
/// the generated SQL'(LFP) script, then execute the prepared query against a
/// generated document as a sanity check.
fn sql_section(dtd_name: &str, query: &str) {
    let dtd = sample_dtd(dtd_name);
    println!("\n## Generated SQL — `{query}` over the `{dtd_name}` DTD");
    let mut engine = Engine::builder(&dtd).dialect(SqlDialect::Sql99).build();
    // Prepare (and report bad queries) before spending time generating a
    // demo document — translation needs only the DTD.
    {
        let prepared = match engine.prepare(query) {
            Ok(p) => p,
            Err(e) => usage(&format!("cannot prepare query {query:?}: {e}")),
        };
        match prepared.translation() {
            Some(translation) => {
                println!(
                    "\nextended XPath (step 1, pruned):\n    {}",
                    translation.extended
                );
                println!("\nlogical optimizer (between steps 2 and execution):\n");
                for line in x2s_rel::explain_opt_report(&translation.opt).lines() {
                    println!("    {line}");
                }
            }
            None => {
                let witness = prepared
                    .sat_witness()
                    .map(|w| w.to_string())
                    .unwrap_or_default();
                println!("\nstatically empty — never translated:\n    {witness}");
            }
        }
        println!("\nSQL'(LFP) script (step 2, SQL'99 dialect, optimized):\n");
        for line in prepared.sql_text().lines() {
            println!("    {line}");
        }
    }
    // Starred roots can legitimately produce near-empty documents for an
    // unlucky seed; retry a few seeds so the demo document is non-trivial.
    let tree = (0..16)
        .map(|s| {
            Generator::new(
                &dtd,
                GeneratorConfig::shaped(8, 3, Some(2_000)).with_seed(0xF005_BA11 + s),
            )
            .generate()
        })
        .find(|t| t.len() >= 100)
        .unwrap_or_else(|| {
            Generator::new(&dtd, GeneratorConfig::shaped(8, 3, Some(2_000))).generate()
        });
    engine.load(&tree);
    // A satisfiable query re-prepares as a plan-cache hit (the translation
    // above is reused); a statically-empty one is re-pruned by the gate.
    let prepared = engine.prepare(query).expect("already prepared once");
    let answers = prepared.execute().expect("sample programs execute");
    if prepared.is_statically_empty() {
        assert_eq!(engine.stats().sat_pruned, 2, "both prepares pruned");
        assert!(answers.is_empty(), "pruned queries answer ∅");
        println!(
            "statically empty: answered ∅ against a generated {}-element \
             document with no translation, plan, or executor time",
            engine.doc_len()
        );
        return;
    }
    assert_eq!(engine.stats().plan_cache_hits, 1, "second prepare hits");
    println!(
        "executed against a generated {}-element document: {} answer node(s)",
        engine.doc_len(),
        answers.len()
    );
    // Amortized serving cost: prepared once, executed repeatedly.
    let warm = measure_prepared(&dtd, query, engine.database().expect("loaded"), 3);
    println!(
        "warm-cache execution: {:.2} ms/query (translation amortized across {} run(s))",
        warm.ms(),
        3
    );
}

/// The perf-trajectory section: run the Table-5 execute-phase workloads and
/// either print them as a table or write the machine-readable
/// `BENCH_5.json` (the file future PRs diff against).
fn bench_section(scale: f64, reps: usize, threads: usize, json: bool) {
    let records = bench_all(scale, reps, threads);
    if json {
        // A quick closed-loop load run rides along so the JSON records
        // serving latency quantiles + coalesce/rejection rates per PR.
        let serving = quick_load(scale, threads.max(4));
        let doc = bench_json(&records, scale, reps, threads, Some(&serving));
        let path = "BENCH_5.json";
        std::fs::write(path, &doc).unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        println!(
            "\n## Perf trajectory\nwrote {path} ({} workloads)",
            records.len()
        );
    }
    emit("Perf trajectory (bench)", vec![bench_table(&records)]);
}

fn emit(section: &str, tables: Vec<Table>) {
    println!("\n## {section}");
    for t in tables {
        print!("{t}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [all|sql|opt|analyze|satcheck|bench|throughput|exp1|exp2|exp3|exp4|exp5|table5|tables123]… \
         [--scale F] [--reps N] [--threads N] [--dtd NAME] [--query XPATH] [--quick] [--json]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
