//! Closed- and open-loop load generation against the serving layer.
//!
//! Drives [`x2s_serve::QueryService`] in-process (no sockets — this
//! measures the serving stack's coalescing and the executor, not the
//! kernel's TCP path) with M workers over K distinct queries. With K ≪ M
//! the plan-cache delta shows flights ≈ K per wave while `coalesced`
//! absorbs the rest — the single-flight story, quantified.
//!
//! Latencies land in an HDR-style log-bucketed [`Histogram`] (32 sub-buckets
//! per power of two, ≲3 % relative error) so p50/p95/p99 come from one pass
//! with no per-sample storage.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use x2s_core::Engine;
use x2s_serve::QueryService;

/// Number of sub-buckets per power of two (fixed precision).
const SUBS: usize = 32;

/// An HDR-style latency histogram over `u64` nanoseconds.
///
/// Values below 32 get exact buckets; above that, each power of two splits
/// into 32 linear sub-buckets, giving a relative error bound of 1/32 (~3 %)
/// at any magnitude.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64 powers of two × 32 sub-buckets bounds any u64 value.
        Histogram {
            buckets: vec![0; 64 * SUBS],
            count: 0,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUBS as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros() as usize; // floor(log2 v), ≥ 5
            let sub = ((v >> (exp - 5)) & 31) as usize;
            (exp - 4) * SUBS + sub
        }
    }

    /// Representative (lower-bound) value of bucket `i`.
    fn value(i: usize) -> u64 {
        if i < SUBS {
            i as u64
        } else {
            let exp = i / SUBS + 4;
            let sub = (i % SUBS) as u64;
            (SUBS as u64 + sub) << (exp - 5)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            // the top-ranked sample is tracked exactly
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::value(i).min(self.max);
            }
        }
        self.max
    }
}

/// How the generator issues load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Closed loop: each worker issues its next request the moment the
    /// previous one completes (measures capacity).
    Closed,
    /// Open loop: requests arrive on a fixed schedule at `target_qps`
    /// aggregate, regardless of completions; latency is measured from the
    /// *scheduled* start, so queueing delay counts (no coordinated
    /// omission).
    Open {
        /// Aggregate arrival rate across all workers, queries/second.
        target_qps: f64,
    },
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent workers (M).
    pub workers: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Closed or open loop.
    pub mode: LoadMode,
    /// Optional flight hold — widens the coalescing window (testing knob,
    /// see [`QueryService::with_hold`]).
    pub flight_hold: Option<Duration>,
    /// Optional per-request execution deadline (see
    /// [`QueryService::deadline`]); expiries are reported as
    /// [`timed_out`](LoadReport::timed_out).
    pub deadline: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            workers: 4,
            duration: Duration::from_millis(500),
            mode: LoadMode::Closed,
            flight_hold: None,
            deadline: None,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The mode the run used.
    pub mode: LoadMode,
    /// Workers (M).
    pub workers: usize,
    /// Distinct queries in the mix (K).
    pub distinct_queries: usize,
    /// Requests completed.
    pub total_requests: u64,
    /// Requests that returned an engine error.
    pub errors: u64,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub qps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Requests rejected at admission over the run (always 0 for the
    /// in-process service — there is no queue to overflow — but populated
    /// from the same stats delta so server-driven runs share the schema).
    pub rejected: u64,
    /// Requests that joined another request's flight.
    pub coalesced: u64,
    /// Executor flights that ran to completion (plan-cache hits + misses
    /// delta — only flight leaders prepare — minus the flights whose
    /// execution hit its deadline, which are reported as
    /// [`timed_out`](LoadReport::timed_out) instead).
    pub flights: u64,
    /// Satisfiability checks run over the load (gate delta: pruned
    /// requests plus flight leaders that passed the gate).
    pub sat_checks: u64,
    /// Requests the satisfiability gate answered statically (∅ against the
    /// DTD) without occupying a flight.
    pub pruned: u64,
    /// Flights whose execution aborted on the cooperative deadline
    /// (`exec_timeouts` delta). Every request led a completed flight,
    /// led a timed-out one, joined one, or was pruned:
    /// `coalesced + flights + pruned + timed_out == total_requests`.
    pub timed_out: u64,
    /// `coalesced / total_requests` (0 when idle).
    pub coalesce_rate: f64,
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Run `cfg` against `engine` (which must have a document loaded) over the
/// query mix `queries`. Every worker cycles through the mix round-robin
/// from a different offset, so with K ≪ M each query is always in flight
/// on several workers at once.
pub fn run_load(engine: &Engine<'_>, queries: &[&str], cfg: &LoadConfig) -> LoadReport {
    assert!(!queries.is_empty(), "need at least one query");
    let workers = cfg.workers.max(1);
    let mut service = match cfg.flight_hold {
        Some(hold) => QueryService::with_hold(engine, hold),
        None => QueryService::new(engine),
    };
    if let Some(deadline) = cfg.deadline {
        service = service.deadline(deadline);
    }
    let before = engine.stats();
    let histogram = Mutex::new(Histogram::new());
    let errors = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);

    let started = Instant::now();
    let deadline = started + cfg.duration;
    thread::scope(|s| {
        for w in 0..workers {
            let service = &service;
            let histogram = &histogram;
            let errors = &errors;
            let completed = &completed;
            s.spawn(move || {
                let mut local = Histogram::new();
                let mut i = 0usize;
                // Open loop: this worker's share of the arrival schedule.
                let interval = match cfg.mode {
                    LoadMode::Open { target_qps } if target_qps > 0.0 => {
                        Some(Duration::from_secs_f64(workers as f64 / target_qps))
                    }
                    _ => None,
                };
                loop {
                    let scheduled = match interval {
                        Some(step) => {
                            let at =
                                started + step.mul_f64((i * workers + w) as f64 / workers as f64);
                            if at >= deadline {
                                break;
                            }
                            if let Some(wait) = at.checked_duration_since(Instant::now()) {
                                thread::sleep(wait);
                            }
                            at
                        }
                        None => {
                            if Instant::now() >= deadline {
                                break;
                            }
                            Instant::now()
                        }
                    };
                    let query = queries[(w + i) % queries.len()];
                    match service.query(query) {
                        Ok(_) => {}
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Latency from the scheduled start: in open-loop mode a
                    // stalled server shows up as queueing delay instead of
                    // being silently omitted.
                    local.record(scheduled.elapsed().as_nanos() as u64);
                    completed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                histogram
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&local);
            });
        }
    });
    let elapsed = started.elapsed();

    let after = engine.stats();
    let hist = histogram
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let total = completed.load(Ordering::Relaxed) as u64;
    let coalesced = (after.requests_coalesced - before.requests_coalesced) as u64;
    let timed_out = (after.exec_timeouts - before.exec_timeouts) as u64;
    // A timed-out leader still prepared its plan, so subtract expiries from
    // the plan-cache delta to count only flights that ran to completion —
    // keeping the per-request accounting exact (see `LoadReport::timed_out`).
    let flights = ((after.plan_cache_hits + after.plan_cache_misses)
        - (before.plan_cache_hits + before.plan_cache_misses)) as u64
        - timed_out;
    let sat_checks = (after.sat_checked - before.sat_checked) as u64;
    let pruned = (after.sat_pruned - before.sat_pruned) as u64;
    LoadReport {
        mode: cfg.mode,
        workers,
        distinct_queries: queries.len(),
        total_requests: total,
        errors: errors.load(Ordering::Relaxed) as u64,
        elapsed,
        qps: if elapsed.as_secs_f64() > 0.0 {
            total as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: ns_to_ms(hist.quantile(0.50)),
        p95_ms: ns_to_ms(hist.quantile(0.95)),
        p99_ms: ns_to_ms(hist.quantile(0.99)),
        max_ms: ns_to_ms(hist.max()),
        rejected: (after.requests_rejected - before.requests_rejected) as u64,
        coalesced,
        flights,
        sat_checks,
        pruned,
        timed_out,
        coalesce_rate: if total > 0 {
            coalesced as f64 / total as f64
        } else {
            0.0
        },
    }
}

/// One-stop closed-loop run for `repro bench --json`: a Cross dataset at
/// `scale`, `workers` workers over a 2-query mix (K ≪ M) with a small
/// flight hold so the coalescing columns are meaningfully non-zero even on
/// a fast machine.
pub fn quick_load(scale: f64, workers: usize) -> LoadReport {
    use x2s_dtd::samples;
    let d = samples::cross();
    let target = ((40_000f64 * scale) as usize).max(500);
    let ds = crate::harness::dataset(&d, 12, 4, Some(target), 23);
    let mut engine = Engine::builder(&d)
        .exec_options(x2s_rel::ExecOptions::default())
        .build();
    engine.load_shared(std::sync::Arc::new(ds.db));
    let cfg = LoadConfig {
        workers: workers.max(2),
        duration: Duration::from_millis(300),
        mode: LoadMode::Closed,
        flight_hold: Some(Duration::from_millis(5)),
        deadline: None,
    };
    run_load(&engine, &["a//d", "a/b//c/d"], &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use x2s_dtd::samples;
    use x2s_rel::ExecOptions;

    #[test]
    fn histogram_quantiles_are_near_exact() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // log-bucketed: within ~3% relative error
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.04, "{p99}");
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile(0.25), 10);
    }

    #[test]
    fn tiny_exact_values_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let dtd = samples::cross();
        let ds = crate::harness::dataset(&dtd, 8, 3, Some(2_000), 23);
        let mut engine = x2s_core::Engine::builder(&dtd)
            .exec_options(ExecOptions::default())
            .build();
        engine.load_shared(Arc::new(ds.db));
        let cfg = LoadConfig {
            workers: 4,
            duration: Duration::from_millis(200),
            mode: LoadMode::Closed,
            flight_hold: None,
            deadline: None,
        };
        // `a/d` is statically empty on the cross DTD (no a→d edge): those
        // requests are answered by the admission gate, not by flights.
        let report = run_load(&engine, &["a//d", "a/b//c/d", "a/d"], &cfg);
        assert!(report.total_requests > 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.timed_out, 0, "ungoverned run never times out");
        assert!(report.pruned > 0, "the statically-empty query was pruned");
        assert_eq!(
            report.coalesced + report.flights + report.pruned + report.timed_out,
            report.total_requests,
            "every request led a flight, joined one, was pruned, or timed out"
        );
        assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
    }

    #[test]
    fn governed_run_reports_timeouts_and_accounting_stays_exact() {
        let dtd = samples::cross();
        let ds = crate::harness::dataset(&dtd, 8, 3, Some(2_000), 23);
        let mut engine = x2s_core::Engine::builder(&dtd)
            .exec_options(ExecOptions::default())
            .build();
        engine.load_shared(Arc::new(ds.db));
        let cfg = LoadConfig {
            workers: 4,
            duration: Duration::from_millis(150),
            mode: LoadMode::Closed,
            flight_hold: None,
            // Already-expired deadline: every flight aborts at its first
            // cancellation checkpoint.
            deadline: Some(Duration::ZERO),
        };
        let report = run_load(&engine, &["a//d", "a/b//c/d", "a/d"], &cfg);
        assert!(report.total_requests > 0);
        assert!(report.timed_out > 0, "expired deadline must abort flights");
        assert_eq!(report.flights, 0, "no flight ran to completion");
        assert_eq!(
            report.errors,
            report.coalesced + report.timed_out,
            "every timed-out leader and every follower saw the typed error"
        );
        assert_eq!(
            report.coalesced + report.flights + report.pruned + report.timed_out,
            report.total_requests,
            "governed accounting is exact"
        );
    }

    #[test]
    fn open_loop_respects_target_rate_roughly() {
        let dtd = samples::cross();
        let ds = crate::harness::dataset(&dtd, 8, 3, Some(1_000), 23);
        let mut engine = x2s_core::Engine::builder(&dtd)
            .exec_options(ExecOptions::default())
            .build();
        engine.load_shared(Arc::new(ds.db));
        let cfg = LoadConfig {
            workers: 2,
            duration: Duration::from_millis(400),
            mode: LoadMode::Open { target_qps: 50.0 },
            flight_hold: None,
            deadline: None,
        };
        let report = run_load(&engine, &["a//d"], &cfg);
        // ~20 arrivals scheduled in 400ms at 50/s; allow wide slop for CI
        assert!(
            report.total_requests >= 5 && report.total_requests <= 40,
            "got {}",
            report.total_requests
        );
    }
}
