//! One function per evaluation artifact; each returns printable [`Table`]s.
//!
//! Sizes accept a `scale` factor (1.0 = the paper's element counts). The
//! Criterion benches use smaller fixed sizes; the `repro` binary defaults to
//! a scale chosen to finish in minutes on a laptop while preserving every
//! qualitative shape.

use crate::harness::{
    dataset, measure, measure_prepared_shared, measure_throughput, measure_with_options, Approach,
};
use std::fmt;
use std::sync::Arc;
use x2s_core::{OptLevel, SqlOptions, Translator};
use x2s_dtd::{cycles, samples, Dtd, DtdGraph};
use x2s_exp::to_regular;
use x2s_rel::{ExecOptions, Stats};
use x2s_shred::edge_database;
use x2s_xml::generator::mark_values;
use x2s_xml::parse_xml;
use x2s_xpath::{parse_xpath, Path, Qual};

/// A printable series table.
pub struct Table {
    /// Title, e.g. `Fig. 12(a) — Qa, vary X_L (X_R = 4)`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Paper-shape note for EXPERIMENTS.md.
    pub note: String,
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n### {}", self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        if !self.note.is_empty() {
            writeln!(f, "\n_{}_", self.note)?;
        }
        Ok(())
    }
}

fn ms(v: f64) -> String {
    format!("{v:.1}")
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(200)
}

/// Exp-1 (Fig. 12a–h): the four Cross-DTD queries under varying tree
/// shapes, 120 000 elements, approaches R/E/X.
pub fn exp1(scale: f64, reps: usize) -> Vec<Table> {
    let d = samples::cross();
    let elements = scaled(120_000, scale);
    let queries: [(&str, &str); 4] = [
        ("Qa", "a/b//c/d"),
        ("Qb", "a[//c]//d"),
        ("Qc", "a[not //c]"),
        ("Qd", "a[not //c or (b and //d)]"),
    ];
    let mut out = Vec::new();
    let panels = "abcdefgh".as_bytes();
    for (qi, (qname, query)) in queries.iter().enumerate() {
        // vary X_L with X_R = 4
        let mut rows = Vec::new();
        for xl in [8usize, 12, 16, 20] {
            let ds = dataset(&d, xl, 4, Some(elements), 42 + xl as u64);
            let mut row = vec![xl.to_string()];
            for a in Approach::all() {
                row.push(ms(measure(a, &d, query, &ds.db, reps).ms()));
            }
            rows.push(row);
        }
        out.push(Table {
            title: format!(
                "Fig. 12({}) — {qname} = {query}: vary X_L (X_R = 4, {elements} elements)",
                panels[qi * 2] as char
            ),
            headers: vec![
                "X_L".into(),
                "R (ms)".into(),
                "E (ms)".into(),
                "X (ms)".into(),
            ],
            rows,
            note: "paper: X lowest and nearly flat; R and E grow with X_L".into(),
        });
        // vary X_R with X_L = 12
        let mut rows = Vec::new();
        for xr in [4usize, 6, 8, 10] {
            let ds = dataset(&d, 12, xr, Some(elements), 142 + xr as u64);
            let mut row = vec![xr.to_string()];
            for a in Approach::all() {
                row.push(ms(measure(a, &d, query, &ds.db, reps).ms()));
            }
            rows.push(row);
        }
        out.push(Table {
            title: format!(
                "Fig. 12({}) — {qname} = {query}: vary X_R (X_L = 12, {elements} elements)",
                panels[qi * 2 + 1] as char
            ),
            headers: vec![
                "X_R".into(),
                "R (ms)".into(),
                "E (ms)".into(),
                "X (ms)".into(),
            ],
            rows,
            note: "paper: X marginally affected by X_R; E worst; R improves as leaves dominate"
                .into(),
        });
    }
    out
}

/// Exp-2 (Fig. 13a,b): pushing selections into the LFP operator.
/// Qe = `a[text()=sel]/b//c/d`, Qf = `a/b//c/d[text()=sel]`; the number of
/// marked (qualified) nodes varies; Push-Selection vs plain Selection.
pub fn exp2(scale: f64, reps: usize) -> Vec<Table> {
    let d = samples::cross();
    let elements = scaled(120_000, scale);
    let sizes: Vec<usize> = [100usize, 1_000, 10_000, 50_000]
        .iter()
        .map(|&s| scaled(s, scale))
        .collect();
    let cases = [
        (
            "a",
            "Qe = a[text()=\"sel\"]/b//c/d",
            "a",
            "a[text()='sel']/b//c/d",
        ),
        (
            "b",
            "Qf = a/b//c/d[text()=\"sel\"]",
            "d",
            "a/b//c/d[text()='sel']",
        ),
    ];
    let mut out = Vec::new();
    for (panel, title, marked_label, query) in cases {
        let mut rows = Vec::new();
        for &m in &sizes {
            // paper setting: X_R = 8, X_L = 12
            let mut ds = dataset(&d, 12, 8, Some(elements), 77);
            let label = d.elem(marked_label).unwrap();
            let marked = mark_values(&mut ds.tree, label, m, "sel", 99);
            let db = edge_database(&ds.tree, &d);
            let push = measure_with_options(
                &d,
                query,
                &db,
                SqlOptions {
                    push_selections: true,
                    root_filter_pushdown: true,
                    ..SqlOptions::default()
                },
                reps,
            );
            let plain = measure_with_options(
                &d,
                query,
                &db,
                SqlOptions {
                    push_selections: false,
                    root_filter_pushdown: false,
                    ..SqlOptions::default()
                },
                reps,
            );
            assert_eq!(push.answers, plain.answers, "push must not change answers");
            rows.push(vec![marked.to_string(), ms(push.ms()), ms(plain.ms())]);
        }
        out.push(Table {
            title: format!("Fig. 13({panel}) — {title}: vary #qualified `{marked_label}` (X_R=8, X_L=12, {elements} elements)"),
            headers: vec![
                format!("#{marked_label} marked"),
                "Push-Selection (ms)".into(),
                "Selection (ms)".into(),
            ],
            rows,
            note: "paper: pushing selections into the lfp is significantly faster".into(),
        });
    }
    out
}

/// Exp-3 (Fig. 14): scalability of `a//d` on Cross, 60k → 480k elements,
/// X_R = 4, X_L = 16.
pub fn exp3(scale: f64, reps: usize) -> Vec<Table> {
    let d = samples::cross();
    let mut rows = Vec::new();
    for base in [60_000usize, 120_000, 240_000, 480_000] {
        let elements = scaled(base, scale);
        let ds = dataset(&d, 16, 4, Some(elements), 7);
        let mut row = vec![elements.to_string()];
        for a in Approach::all() {
            row.push(ms(measure(a, &d, "a//d", &ds.db, reps).ms()));
        }
        rows.push(row);
    }
    vec![Table {
        title: "Fig. 14 — scalability of a//d on Cross (X_R = 4, X_L = 16)".into(),
        headers: vec![
            "elements".into(),
            "R (ms)".into(),
            "E (ms)".into(),
            "X (ms)".into(),
        ],
        rows,
        note: "paper at 480k: E ≈ 2.4× and R ≈ 1.7× the cost of X".into(),
    }]
}

/// Exp-4 part 1 (Table 4 + Fig. 16): BIOML subgraph cases, one dataset
/// generated from the largest 4-cycle graph (X_R = 6, X_L = 16).
///
/// Queries are translated over the *subgraph* DTDs but executed on the full
/// dataset — exactly the containment setting of Theorem 4.2.
pub fn exp4(scale: f64, reps: usize) -> Vec<Table> {
    let full = samples::bioml_d();
    let elements = scaled(1_990_858, scale);
    let ds = dataset(&full, 16, 6, Some(elements), 3);
    let cases: [(&str, &str, Dtd, usize); 7] = [
        ("2a", "gene//locus", samples::bioml_a(), 2),
        ("2b", "gene//locus", samples::bioml_b(), 3),
        ("2c", "gene//dna", samples::bioml_b(), 3),
        ("3a", "gene//locus", samples::bioml_c(), 3),
        ("3b", "gene//locus", samples::bioml_d(), 4),
        ("4a", "gene//locus", samples::bioml(), 4),
        ("4b", "gene//dna", samples::bioml(), 4),
    ];
    let mut rows = Vec::new();
    for (case, query, dtd, n_cycles) in cases {
        let mut row = vec![case.to_string(), query.to_string(), n_cycles.to_string()];
        for a in Approach::all() {
            row.push(ms(measure(a, &dtd, query, &ds.db, reps).ms()));
        }
        rows.push(row);
    }
    vec![Table {
        title: format!(
            "Table 4 + Fig. 16 — BIOML subgraph cases ({elements} elements from the 4-cycle graph)"
        ),
        headers: vec![
            "case".into(),
            "query".into(),
            "cycles".into(),
            "R (ms)".into(),
            "E (ms)".into(),
            "X (ms)".into(),
        ],
        rows,
        note: "paper: X beats R and E in all cases except 2b; our Fig. 15d equals Fig. 11b so \
               cases 3b and 4a coincide"
            .into(),
    }]
}

/// Exp-4 part 2 (Fig. 17a,b): `Even//Data` on the 9-cycle GedML graph.
pub fn exp5(scale: f64, reps: usize) -> Vec<Table> {
    let d = samples::gedml();
    let mut out = Vec::new();
    // (a) vary X_L at X_R = 6; paper dataset sizes 286 845 / 845 045 / 1 019 798
    let mut rows = Vec::new();
    for (xl, paper_elements) in [(13usize, 286_845usize), (14, 845_045), (15, 1_019_798)] {
        let elements = scaled(paper_elements, scale);
        let ds = dataset(&d, xl, 6, Some(elements), 13);
        let mut row = vec![xl.to_string(), elements.to_string()];
        for a in Approach::all() {
            row.push(ms(measure(a, &d, "Even//Data", &ds.db, reps).ms()));
        }
        rows.push(row);
    }
    out.push(Table {
        title: "Fig. 17(a) — Even//Data on GedML: vary X_L (X_R = 6)".into(),
        headers: vec![
            "X_L".into(),
            "elements".into(),
            "R (ms)".into(),
            "E (ms)".into(),
            "X (ms)".into(),
        ],
        rows,
        note: "paper: X outperforms E and R for all X_L".into(),
    });
    // (b) vary X_R at X_L = 16; paper sizes 226 663 / 1 199 990 / 5 041 437
    let mut rows = Vec::new();
    for (xr, paper_elements) in [(6usize, 226_663usize), (7, 1_199_990), (8, 5_041_437)] {
        let elements = scaled(paper_elements, scale);
        let ds = dataset(&d, 16, xr, Some(elements), 17);
        let mut row = vec![xr.to_string(), elements.to_string()];
        for a in Approach::all() {
            row.push(ms(measure(a, &d, "Even//Data", &ds.db, reps).ms()));
        }
        rows.push(row);
    }
    out.push(Table {
        title: "Fig. 17(b) — Even//Data on GedML: vary X_R (X_L = 16)".into(),
        headers: vec![
            "X_R".into(),
            "elements".into(),
            "R (ms)".into(),
            "E (ms)".into(),
            "X (ms)".into(),
        ],
        rows,
        note: "paper: X noticeably beats E; X similar to R as X_R grows (X_R affects join \
               selectivity, not iteration count)"
            .into(),
    });
    out
}

/// Concurrent-serving throughput on the fig12-style closure workload: the
/// four Cross-DTD queries + `a//d`, served by one shared `Engine` from 1 up
/// to `threads` workers, and the parallel-LFP ablation (1 worker,
/// `ExecOptions::threads` 1 vs `threads`) on the scalability dataset.
pub fn throughput(scale: f64, threads: usize) -> Vec<Table> {
    let d = samples::cross();
    let threads = threads.max(1);
    let queries = ["a//d", "a/b//c/d", "a[//c]//d", "a[not //c]", "a//a"];
    let elements = scaled(60_000, scale);
    let ds = dataset(&d, 12, 4, Some(elements), 23);
    let db = Arc::new(ds.db);
    let rounds = 6;
    let mut sweep: Vec<usize> = vec![1, 2, threads.div_ceil(2), threads];
    sweep.retain(|&w| w <= threads);
    sweep.sort_unstable();
    sweep.dedup();
    let mut rows = Vec::new();
    let mut base_qps = 0.0f64;
    for &workers in &sweep {
        let t = measure_throughput(
            &d,
            &queries,
            Arc::clone(&db),
            workers,
            rounds,
            ExecOptions::default(),
        );
        if workers == 1 {
            base_qps = t.qps();
        }
        let speedup = if base_qps > 0.0 {
            t.qps() / base_qps
        } else {
            0.0
        };
        rows.push(vec![
            workers.to_string(),
            t.total_queries.to_string(),
            ms(t.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", t.qps()),
            format!("{speedup:.2}x"),
        ]);
    }
    let mut out = vec![Table {
        title: format!(
            "Throughput — fig12-style closure workload on Cross \
             ({elements} elements, {rounds} rounds x {} queries per worker)",
            queries.len()
        ),
        headers: vec![
            "workers".into(),
            "queries".into(),
            "elapsed (ms)".into(),
            "QPS".into(),
            "speedup".into(),
        ],
        rows,
        note: "one shared Engine: sharded plan cache + atomic stats; \
               aggregate QPS should grow with workers until cores saturate"
            .into(),
    }];
    // Parallel LFP/join ablation: same prepared query, one worker,
    // ExecOptions::threads 1 vs N.
    let big = dataset(&d, 16, 4, Some(scaled(240_000, scale)), 7);
    let big_elements = big.tree.len();
    let big_db = Arc::new(big.db);
    let mut rows = Vec::new();
    for q in ["a//d", "a/b//c/d"] {
        let seq = measure_prepared_shared(&d, q, Arc::clone(&big_db), 3, ExecOptions::default());
        let par = measure_prepared_shared(
            &d,
            q,
            Arc::clone(&big_db),
            3,
            ExecOptions::default().with_threads(threads),
        );
        assert_eq!(
            seq.answers, par.answers,
            "parallel execution must not change answers"
        );
        rows.push(vec![
            q.to_string(),
            ms(seq.ms()),
            ms(par.ms()),
            format!("{:.2}x", seq.ms() / par.ms().max(1e-9)),
        ]);
    }
    out.push(Table {
        title: format!(
            "Parallel LFP/joins — warm-cache execution, ExecOptions::threads = 1 vs {threads} \
             ({big_elements} elements)"
        ),
        headers: vec![
            "query".into(),
            "1 thread (ms)".into(),
            format!("{threads} threads (ms)"),
            "speedup".into(),
        ],
        rows,
        note: "partitioned frontier expansion + partitioned hash joins kick in above \
               the tuple-count thresholds; answers are asserted identical"
            .into(),
    });
    out
}

/// Closed-loop serving harness: M workers over K distinct queries with
/// K ≪ M, through the serving layer's single-flight query service. The
/// plan-cache delta counts executor *flights*; with a small flight hold
/// each wave of an identical query runs once and everyone else joins, so
/// the coalesce rate climbs as K shrinks.
pub fn load_harness(scale: f64, workers: usize) -> Vec<Table> {
    use crate::loadgen::{run_load, LoadConfig, LoadMode};
    use std::time::Duration;

    let d = samples::cross();
    let workers = workers.max(2);
    let ds = dataset(&d, 12, 4, Some(scaled(40_000, scale)), 23);
    let elements = ds.tree.len();
    let db = Arc::new(ds.db);
    // `a/d` is statically empty on Cross (no a→d edge): the admission
    // gate answers it without a flight, populating the pruned column.
    let all_queries = ["a//d", "a/b//c/d", "a[//c]//d", "a[not //c]", "a//a", "a/d"];

    let mut rows = Vec::new();
    let mut run = |mode: LoadMode, k: usize, hold: Option<Duration>, deadline: Option<Duration>| {
        let mut engine = x2s_core::Engine::builder(&d)
            .exec_options(ExecOptions::default())
            .build();
        engine.load_shared(Arc::clone(&db));
        let cfg = LoadConfig {
            workers,
            duration: Duration::from_millis(300),
            mode,
            flight_hold: hold,
            deadline,
        };
        let r = run_load(&engine, &all_queries[..k], &cfg);
        let mode_label = match r.mode {
            LoadMode::Closed => "closed".to_string(),
            LoadMode::Open { target_qps } => format!("open @{target_qps:.0}/s"),
        };
        rows.push(vec![
            mode_label,
            format!("{workers}"),
            format!("{k}"),
            r.total_requests.to_string(),
            format!("{:.0}", r.qps),
            ms(r.p50_ms),
            ms(r.p95_ms),
            ms(r.p99_ms),
            r.flights.to_string(),
            r.coalesced.to_string(),
            r.sat_checks.to_string(),
            r.pruned.to_string(),
            r.timed_out.to_string(),
            format!("{:.0}%", r.coalesce_rate * 100.0),
        ]);
    };
    // K ≪ M with a small hold: flights per wave ≈ K, the rest coalesce.
    let hold = Some(Duration::from_millis(5));
    run(LoadMode::Closed, 1, hold, None);
    run(LoadMode::Closed, 2, hold, None);
    // Full mix, no hold: natural (racy) coalescing only.
    run(LoadMode::Closed, all_queries.len(), None, None);
    // Open loop at a modest arrival rate: latency includes queueing delay.
    run(LoadMode::Open { target_qps: 200.0 }, 2, None, None);
    // Governed run with an already-expired deadline: every flight aborts
    // at its first cancellation checkpoint, populating the timed_out
    // column — the resource-governance path under full load.
    run(LoadMode::Closed, 2, None, Some(Duration::ZERO));

    vec![Table {
        title: format!(
            "Serving load harness — {workers} workers on Cross ({elements} elements), \
             single-flight coalescing"
        ),
        headers: vec![
            "mode".into(),
            "M".into(),
            "K".into(),
            "requests".into(),
            "QPS".into(),
            "p50 (ms)".into(),
            "p95 (ms)".into(),
            "p99 (ms)".into(),
            "flights".into(),
            "coalesced".into(),
            "sat_checked".into(),
            "pruned".into(),
            "timed_out".into(),
            "coalesce%".into(),
        ],
        rows,
        note: "M workers cycle through K distinct queries; flights = completed \
               executor flights (plan-cache hits+misses delta minus deadline \
               expiries — only single-flight leaders prepare), so \
               flights + coalesced + pruned + timed_out = requests; K ≪ M \
               drives the coalesce rate up; pruned requests were answered by \
               the satisfiability gate without a flight; the last row runs \
               under an expired execution deadline, so every flight aborts \
               cooperatively and lands in timed_out"
            .into(),
    }]
}

/// Table 5: LFP / ALL operator counts (min/max/avg over all reachable node
/// pairs) of the SQL programs produced via CycleE vs CycleEX.
pub fn table5() -> Vec<Table> {
    let dtds: [(&str, Dtd); 6] = [
        ("Cross (Fig. 11a)", samples::cross()),
        ("BIOMLa (Fig. 15a)", samples::bioml_a()),
        ("BIOMLb (Fig. 15b)", samples::bioml_b()),
        ("BIOMLc (Fig. 15c)", samples::bioml_c()),
        ("BIOMLd (Fig. 15d)", samples::bioml_d()),
        ("GedML (Fig. 11c)", samples::gedml()),
    ];
    let mut rows = Vec::new();
    for (name, dtd) in &dtds {
        let graph = DtdGraph::of(dtd);
        let n = graph.node_count();
        let m = graph.edge_count();
        let c = cycles::cycle_count(&graph);
        // The paper measures rec(A,B) itself ("for each pair of A and B, we
        // use CycleE and CycleEX to compute the extended xpath expression
        // representing all paths from A to B, and then determine the number
        // of operations in the resulting relational algebra").
        let mut e_lfp = MinMaxAvg::new();
        let mut e_all = MinMaxAvg::new();
        let mut x_lfp = MinMaxAvg::new();
        let mut x_all = MinMaxAvg::new();
        let tg = x2s_core::TransGraph::new(dtd);
        let (rec_query, rec_table) = x2s_core::RecTable::standalone(&tg);
        // Count with pushing disabled: pushing clones one LFP per closure
        // *use*, whereas Table 5 counts the shared operators of the program.
        // The logical optimizer is off too — this table reproduces the
        // paper's *raw translation* counts (the CycleE-vs-CycleEX contrast);
        // the optimizer's own effect is the `opt` ablation section.
        let count_opts = SqlOptions {
            push_selections: false,
            root_filter_pushdown: false,
            optimize: OptLevel::None,
        };
        for from in dtd.ids() {
            for to in dtd.ids() {
                if from == to || !graph.reach_strict(from).contains(to) {
                    continue;
                }
                let (a, b) = (tg.node(from), tg.node(to));
                // CycleE: a variable-free regular expression per pair
                if let Ok(exp) = x2s_core::rec_regular(&tg, a, b, crate::harness::CYCLEE_CAP) {
                    let q = x2s_exp::ExtendedQuery::of(exp);
                    if let Ok(prog) =
                        x2s_core::exp_to_sql(&q, &count_opts, &std::collections::HashMap::new())
                    {
                        let counts = prog.op_counts();
                        e_lfp.push(counts.lfp);
                        e_all.push(counts.total());
                    }
                }
                // CycleEX: the shared all-pairs table, pruned per pair
                let mut q = rec_query.clone();
                q.result = rec_table.rec_full(a, b);
                let q = q.pruned();
                if let Ok(prog) =
                    x2s_core::exp_to_sql(&q, &count_opts, &std::collections::HashMap::new())
                {
                    let counts = prog.op_counts();
                    x_lfp.push(counts.lfp);
                    x_all.push(counts.total());
                }
            }
        }
        rows.push(vec![
            name.to_string(),
            n.to_string(),
            m.to_string(),
            c.to_string(),
            e_lfp.show(),
            e_all.show(),
            x_lfp.show(),
            x_all.show(),
        ]);
    }
    vec![Table {
        title: "Table 5 — number of operations (min/max/average over reachable pairs A//B)".into(),
        headers: vec![
            "DTD".into(),
            "n".into(),
            "m".into(),
            "c".into(),
            "CycleE LFP".into(),
            "CycleE ALL".into(),
            "CycleEX LFP".into(),
            "CycleEX ALL".into(),
        ],
        rows,
        note: "paper: CycleEX uses fewer lfp and fewer total operations in all cases \
               (e.g. GedML avg 16 → 4 LFPs, 188 → 19 ops)"
            .into(),
    }]
}

/// Optimizer ablation: Table-5 operator counts and native-exec timings of
/// the workload queries with the logical optimizer on
/// ([`OptLevel::Full`], the default) vs off ([`OptLevel::None`]).
///
/// The Table-5 workload suite: every (DTD, query) pair the optimizer
/// ablation and the static-analysis report iterate.
fn table5_workloads() -> Vec<(&'static str, Dtd, Vec<&'static str>)> {
    vec![
        (
            "Cross",
            samples::cross(),
            vec![
                "a/b//c/d",
                "a[//c]//d",
                "a[not //c]",
                "a[not //c or (b and //d)]",
                "a//d",
            ],
        ),
        (
            "Dept",
            samples::dept_simplified(),
            vec!["dept//project", "dept//course[project or student]"],
        ),
        (
            "GedML",
            samples::gedml(),
            vec!["Even//Data", "Even//Obje[Sour]"],
        ),
        ("BIOML", samples::bioml(), vec!["gene//locus", "gene//dna"]),
    ]
}

/// `repro analyze` — run the static plan analyzer (`x2s_rel::analyze`)
/// over every Table-5 workload program, optimizer off and on, and report
/// the inferred result schema per query. Any analyzer diagnostic is a hard
/// failure: these programs are the translator's contract surface, and the
/// suite doubles as the zero-diagnostic confirmation the report prints.
pub fn analyze_report() -> Vec<Table> {
    use x2s_rel::{analyze_program_with, edge_scan_schema};
    let mut rows = Vec::new();
    let mut warnings_total = 0usize;
    for (name, dtd, queries) in &table5_workloads() {
        for q in queries {
            let path = parse_xpath(q).expect("workload queries parse");
            for level in [OptLevel::None, OptLevel::Full] {
                let tr = Translator::new(dtd)
                    .with_sql_options(SqlOptions {
                        optimize: level,
                        ..SqlOptions::default()
                    })
                    .translate(&path)
                    .expect("workload queries translate");
                let analysis = analyze_program_with(&tr.program, &edge_scan_schema)
                    .unwrap_or_else(|e| panic!("analyzer rejected {name}/{q} at {level:?}: {e}"));
                warnings_total += analysis.warnings.len();
                rows.push(vec![
                    name.to_string(),
                    q.to_string(),
                    format!("{level:?}"),
                    tr.program.len().to_string(),
                    analysis.result.to_string(),
                    analysis.warnings.len().to_string(),
                ]);
            }
        }
    }
    vec![Table {
        title: format!(
            "Static analysis — schema inference over Table-5 workloads \
             ({} programs, 0 errors, {} dead-statement warnings)",
            rows.len(),
            warnings_total
        ),
        headers: vec![
            "DTD".into(),
            "query".into(),
            "opt".into(),
            "stmts".into(),
            "result schema".into(),
            "warnings".into(),
        ],
        rows,
        note: "every translated program passes schema/type inference and \
               well-formedness verification with zero errors, optimizer off and on"
            .into(),
    }]
}

/// Random path over a fixed label alphabet for the satcheck corpus — the
/// same weighted grammar the property suite uses (labels include ones the
/// DTD does not declare, exercising the unknown-tag witness).
fn satcheck_arb_path(rng: &mut x2s_xml::rng::SplitMix64, labels: &[&str], depth: u32) -> Path {
    if depth == 0 {
        return satcheck_arb_leaf(rng, labels);
    }
    match rng.gen_range(0..9) {
        0..=2 => Path::Seq(
            Box::new(satcheck_arb_path(rng, labels, depth - 1)),
            Box::new(satcheck_arb_path(rng, labels, depth - 1)),
        ),
        3..=4 => Path::Descendant(Box::new(satcheck_arb_path(rng, labels, depth - 1))),
        5 => Path::Union(
            Box::new(satcheck_arb_path(rng, labels, depth - 1)),
            Box::new(satcheck_arb_path(rng, labels, depth - 1)),
        ),
        6 => {
            let p = satcheck_arb_path(rng, labels, depth - 1);
            let q = satcheck_arb_qual(rng, labels, depth - 1, 2);
            Path::Qualified(Box::new(p), q)
        }
        _ => satcheck_arb_leaf(rng, labels),
    }
}

fn satcheck_arb_leaf(rng: &mut x2s_xml::rng::SplitMix64, labels: &[&str]) -> Path {
    match rng.gen_range(0..6) {
        0..=3 => Path::label(labels[rng.gen_range(0..labels.len())]),
        4 => Path::Wildcard,
        _ => Path::Empty,
    }
}

fn satcheck_arb_qual(
    rng: &mut x2s_xml::rng::SplitMix64,
    labels: &[&str],
    depth: u32,
    qdepth: u32,
) -> Qual {
    if qdepth > 0 && rng.gen_bool(0.4) {
        return match rng.gen_range(0..4) {
            0..=1 => Qual::not(satcheck_arb_qual(rng, labels, depth, qdepth - 1)),
            2 => satcheck_arb_qual(rng, labels, depth, qdepth - 1).and(satcheck_arb_qual(
                rng,
                labels,
                depth,
                qdepth - 1,
            )),
            _ => satcheck_arb_qual(rng, labels, depth, qdepth - 1).or(satcheck_arb_qual(
                rng,
                labels,
                depth,
                qdepth - 1,
            )),
        };
    }
    if rng.gen_range(0..5) < 4 {
        Qual::path(satcheck_arb_path(rng, labels, depth.min(2)))
    } else {
        let consts = ["v0", "v1", "sel"];
        Qual::TextEq(consts[rng.gen_range(0..consts.len())].into())
    }
}

/// `repro satcheck` — the DTD-aware admission gate measured: every Table-5
/// workload query's verdict (with witness and per-check time), then a
/// seeded random corpus per DTD reporting the prune rate and, crucially,
/// an inline soundness check — every `Empty` verdict is replayed against
/// the native oracle on generated documents and must return zero answers.
/// Completeness (oracle-empty queries the analyzer could not prove empty)
/// is measured and reported, not required.
pub fn satcheck_report() -> Vec<Table> {
    use std::collections::BTreeSet;
    use std::time::Instant;
    use x2s_xml::rng::SplitMix64;
    use x2s_xml::{Generator, GeneratorConfig};
    use x2s_xpath::{eval_from_document, Sat, SatAnalyzer};

    // ——— Table 1: workload queries, plus known-impossible companions so
    // the report shows real witnesses next to real verdicts ———
    let impossible: &[(&str, &str)] = &[
        ("Cross", "a/d"),
        ("Cross", "a//zzz"),
        ("Cross", "a/c[d/a]"),
        ("Dept", "dept/student"),
        ("Dept", "dept//course[text()=\"x\" and not text()=\"x\"]"),
        ("GedML", "Even/Data"),
        ("BIOML", "gene/locus[dna]"),
    ];
    let mut verdict_rows = Vec::new();
    for (name, dtd, queries) in &table5_workloads() {
        let analyzer = SatAnalyzer::new(dtd);
        let extra = impossible
            .iter()
            .filter(|(d, _)| d == name)
            .map(|&(_, q)| q);
        for q in queries.iter().copied().chain(extra) {
            let path = parse_xpath(q).expect("satcheck queries parse");
            let started = Instant::now();
            let verdict = analyzer.check(&path);
            let micros = started.elapsed().as_secs_f64() * 1e6;
            let (verdict_cell, witness_cell) = match verdict {
                Sat::NonEmpty { types } => (
                    format!("non-empty → {{{}}}", types.join(", ")),
                    String::new(),
                ),
                Sat::Empty { witness } => ("EMPTY".to_string(), witness.to_string()),
            };
            verdict_rows.push(vec![
                name.to_string(),
                q.to_string(),
                verdict_cell,
                witness_cell,
                format!("{micros:.1}"),
            ]);
        }
    }

    // ——— Table 2: seeded random corpus per DTD, soundness-checked ———
    let corpora: &[(&str, Dtd, &[&str])] = &[
        ("Cross", samples::cross(), &["a", "b", "c", "d", "zzz"]),
        (
            "Dept",
            samples::dept_simplified(),
            &["dept", "course", "student", "project", "zzz"],
        ),
        (
            "GedML",
            samples::gedml(),
            &["Even", "Sour", "Note", "Obje", "Data", "zzz"],
        ),
    ];
    let mut corpus_rows = Vec::new();
    for (name, dtd, labels) in corpora {
        let analyzer = SatAnalyzer::new(dtd);
        // a couple of generated documents per DTD as the oracle's ground
        let docs: Vec<_> = (0..2u64)
            .map(|s| {
                Generator::new(
                    dtd,
                    GeneratorConfig::shaped(7, 3, Some(400)).with_seed(91 + s),
                )
                .generate()
            })
            .collect();
        let (mut total, mut empty, mut unsound, mut incomplete) = (0usize, 0usize, 0usize, 0usize);
        let mut nanos = 0u128;
        let mut sample_witness = String::new();
        for seed in 0..3u64 {
            for case in 0..40usize {
                let mut rng = SplitMix64::seed_from_u64(
                    0x5A7C_4E61u64
                        .wrapping_mul(seed.wrapping_add(17))
                        .wrapping_add(case as u64),
                );
                let query = satcheck_arb_path(&mut rng, labels, 3);
                total += 1;
                let started = Instant::now();
                let verdict = analyzer.check(&query);
                nanos += started.elapsed().as_nanos();
                let oracle_empty = docs.iter().all(|t| {
                    eval_from_document(&query, t, dtd)
                        .into_iter()
                        .map(|n| n.0)
                        .collect::<BTreeSet<u32>>()
                        .is_empty()
                });
                match verdict {
                    Sat::Empty { witness } => {
                        empty += 1;
                        if sample_witness.is_empty() {
                            sample_witness = witness.to_string();
                        }
                        if !oracle_empty {
                            unsound += 1;
                        }
                    }
                    Sat::NonEmpty { .. } => {
                        if oracle_empty {
                            incomplete += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(
            unsound, 0,
            "{name}: an Empty verdict contradicted the native oracle"
        );
        corpus_rows.push(vec![
            name.to_string(),
            total.to_string(),
            empty.to_string(),
            format!("{:.0}%", empty as f64 / total as f64 * 100.0),
            format!("{:.1}", nanos as f64 / total as f64 / 1e3),
            unsound.to_string(),
            incomplete.to_string(),
            sample_witness,
        ]);
    }

    vec![
        Table {
            title: "Satisfiability gate — Table-5 workload queries + known-impossible companions"
                .into(),
            headers: vec![
                "DTD".into(),
                "query".into(),
                "verdict".into(),
                "witness".into(),
                "µs".into(),
            ],
            rows: verdict_rows,
            note: "EMPTY verdicts are proofs: the engine answers these queries ∅ without \
                   translation, planning, or execution; the witness names the offending \
                   step and the schema fact that kills it"
                .into(),
        },
        Table {
            title: "Satisfiability gate — seeded random corpus, soundness-checked against \
                    the native oracle"
                .into(),
            headers: vec![
                "DTD".into(),
                "queries".into(),
                "empty".into(),
                "prune rate".into(),
                "µs/check".into(),
                "unsound".into(),
                "missed-empty".into(),
                "sample witness".into(),
            ],
            rows: corpus_rows,
            note: "unsound = Empty verdicts with oracle answers (hard-asserted 0: every \
                   prune is a proof); missed-empty = queries empty on the sampled \
                   documents the analyzer could not prove empty (completeness is \
                   best-effort — document-dependent emptiness is invisible to a \
                   schema-only analysis)"
                .into(),
        },
    ]
}

/// The first table reports static counts per query — LFP and ALL (Table
/// 5's columns) plus ALL including the per-iteration fixpoint machinery —
/// asserting on ≤ off throughout. The second table reports warm
/// translate+execute timings on generated documents, asserting identical
/// answers.
pub fn opt_ablation(scale: f64, reps: usize) -> Vec<Table> {
    let cases = table5_workloads();
    let opts_of = |level: OptLevel| SqlOptions {
        optimize: level,
        ..SqlOptions::default()
    };
    // Table A — static operator counts (the Table 5 quantities)
    let mut rows = Vec::new();
    for (name, dtd, queries) in &cases {
        for q in queries {
            let path = parse_xpath(q).expect("workload queries parse");
            let tr_of = |level: OptLevel| {
                Translator::new(dtd)
                    .with_sql_options(opts_of(level))
                    .translate(&path)
                    .expect("workload queries translate")
            };
            let off = tr_of(OptLevel::None).program.op_counts();
            let on_tr = tr_of(OptLevel::Full);
            let on = on_tr.program.op_counts();
            assert!(
                on.total() <= off.total() && on.lfp <= off.lfp,
                "optimizer grew {name}/{q}"
            );
            let s = &on_tr.opt.stats;
            rows.push(vec![
                name.to_string(),
                q.to_string(),
                format!("{} → {}", off.lfp, on.lfp),
                format!("{} → {}", off.total(), on.total()),
                format!(
                    "{} → {}",
                    off.total_with_fixpoint_ops(),
                    on.total_with_fixpoint_ops()
                ),
                format!(
                    "-{} stmts, {} cse, {} pushed",
                    s.stmts_eliminated, s.plans_hash_consed, s.preds_pushed
                ),
            ]);
        }
    }
    let mut out = vec![Table {
        title: "Optimizer ablation — Table-5 operator counts, optimizer off → on".into(),
        headers: vec![
            "DTD".into(),
            "query".into(),
            "LFP".into(),
            "ALL".into(),
            "ALL+fixpoint-iter-ops".into(),
            "passes".into(),
        ],
        rows,
        note: "counts never grow; hash-consing/CSE + dead-statement elimination + pushdown \
               shrink most multi-step queries (§5.2, Table 5)"
            .into(),
    }];
    // Table B — native-exec timings, optimizer on vs off
    let timed: [(&str, Dtd, usize, usize, u64, &str); 3] = [
        ("Cross", samples::cross(), 12, 4, 42, "a/b//c/d"),
        ("Cross", samples::cross(), 16, 4, 7, "a//d"),
        ("GedML", samples::gedml(), 13, 6, 13, "Even//Data"),
    ];
    let elements = scaled(60_000, scale);
    let mut rows = Vec::new();
    for (name, dtd, xl, xr, seed, q) in timed {
        let ds = dataset(&dtd, xl, xr, Some(elements), seed);
        let on = measure_with_options(&dtd, q, &ds.db, opts_of(OptLevel::Full), reps);
        let off = measure_with_options(&dtd, q, &ds.db, opts_of(OptLevel::None), reps);
        assert_eq!(
            on.answers, off.answers,
            "optimizer must not change answers ({name}/{q})"
        );
        rows.push(vec![
            name.to_string(),
            q.to_string(),
            ms(off.ms()),
            ms(on.ms()),
            format!("{:.2}x", off.ms() / on.ms().max(1e-9)),
        ]);
    }
    out.push(Table {
        title: format!(
            "Optimizer ablation — translate+execute timings ({elements} elements, \
             fastest of {reps})"
        ),
        headers: vec![
            "DTD".into(),
            "query".into(),
            "off (ms)".into(),
            "on (ms)".into(),
            "speedup".into(),
        ],
        rows,
        note: "answers asserted identical; fewer statements and shared closures mean \
               fewer operators executed"
            .into(),
    });
    out
}

/// Tables 1–3 (§2.3/§3): the running `dept` example — sample shredded
/// database, SQLGen-R's tagged recursion output, and CycleEX's
/// intermediates. (Also reproduced, with narration, by
/// `examples/courseware.rs`.)
pub fn tables123() -> Vec<Table> {
    let d = samples::dept_simplified();
    let t = parse_xml(
        &d,
        "<dept><course><course><course/><project><course><project/></course></project></course><student/><student><course/></student></course></dept>",
    )
    .expect("table 1 document parses");
    let db = edge_database(&t, &d);
    let ids = x2s_xml::paper_ids(&t, &d);
    let name_of = |v: &x2s_rel::Value| -> String {
        match v {
            x2s_rel::Value::Doc => "–".into(),
            x2s_rel::Value::Id(n) => ids[*n as usize].clone(),
            other => other.to_string(),
        }
    };
    let mut out = Vec::new();
    // Table 1
    let mut rows = Vec::new();
    for rel_name in ["R_dept", "R_course", "R_student", "R_project"] {
        let rel = db.get(rel_name).unwrap();
        for tuple in rel.sorted_tuples() {
            rows.push(vec![
                rel_name.to_string(),
                name_of(&tuple[0]),
                name_of(&tuple[1]),
            ]);
        }
    }
    out.push(Table {
        title: "Table 1 — a database encoding an xml tree of the dept dtd".into(),
        headers: vec!["relation".into(), "F".into(), "T".into()],
        rows,
        note: "matches the paper's Table 1 (d1.c1.c2.c3 and d1.c1.c2.p1.c4.p2 paths)".into(),
    });
    // Table 2: SQLGen-R product recursion output for dept//project
    let path = parse_xpath("dept//project").unwrap();
    let tr = x2s_sqlgenr::SqlGenR::new(&d).translate(&path).unwrap();
    let mut stats = Stats::default();
    let answers = tr
        .try_run(&db, ExecOptions::default(), &mut stats)
        .expect("running-example programs execute");
    let mut rows: Vec<Vec<String>> = answers
        .iter()
        .map(|id| vec![ids[*id as usize].clone()])
        .collect();
    rows.sort();
    out.push(Table {
        title: format!(
            "Table 2 — SQLGen-R on dept//project: {} iterations of a {}-join recursion → answers",
            stats.multilfp_iterations, 5
        ),
        headers: vec!["descendant projects".into()],
        rows,
        note: "paper's Table 2 traces the same recursion to p1, p2".into(),
    });
    // Table 3: CycleEX intermediates
    let tr = x2s_core::Translator::new(&d).translate(&path).unwrap();
    let mut stats = Stats::default();
    let answers = tr
        .try_run(&db, ExecOptions::default(), &mut stats)
        .expect("running-example programs execute");
    let mut rows: Vec<Vec<String>> = answers
        .iter()
        .map(|id| vec![ids[*id as usize].clone()])
        .collect();
    rows.sort();
    out.push(Table {
        title: format!(
            "Table 3 — CycleEX on dept//project: {} LFP invocation(s), {} statements → R_f",
            stats.lfp_invocations, stats.stmts_evaluated
        ),
        headers: vec!["R_f (descendant projects)".into()],
        rows,
        note: "paper's Table 3 shows R, Rγ and R_f = {(d1,p1),(d1,p2)}".into(),
    });
    // bonus: the extended XPath query itself (Example 3.5's EQ1)
    let eq = x2s_core::Translator::new(&d).to_extended(&path).unwrap();
    let regular = to_regular(&eq, 100_000)
        .map(|e| e.to_string())
        .unwrap_or_else(|_| "(too large)".into());
    out.push(Table {
        title: "Example 3.5 — EQ1, the extended XPath translation of dept//project".into(),
        headers: vec!["form".into(), "expression".into()],
        rows: vec![
            vec![
                "equations".into(),
                format!("{} bindings", eq.equations.len()),
            ],
            vec!["eliminated".into(), regular],
        ],
        note: "paper: EQ1 = (X_Q1 = Rd/Rc/X*/Rp, X = Rc ∪ Rs/Rc ∪ Rp/Rc)".into(),
    });
    out
}

struct MinMaxAvg {
    min: usize,
    max: usize,
    sum: usize,
    count: usize,
}

impl MinMaxAvg {
    fn new() -> Self {
        MinMaxAvg {
            min: usize::MAX,
            max: 0,
            sum: 0,
            count: 0,
        }
    }

    fn push(&mut self, v: usize) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    fn show(&self) -> String {
        if self.count == 0 {
            "-".into()
        } else {
            format!(
                "{}/{}/{}",
                self.min,
                self.max,
                self.sum.checked_div(self.count).unwrap_or(0)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shapes_hold() {
        let tables = table5();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 6);
        // CycleEX average ALL must not exceed CycleE average ALL anywhere
        for row in &t.rows {
            let e_avg: usize = row[5].split('/').nth(2).unwrap().parse().unwrap();
            let x_avg: usize = row[7].split('/').nth(2).unwrap().parse().unwrap();
            assert!(
                x_avg <= e_avg,
                "CycleEX should not use more ops than CycleE: {row:?}"
            );
        }
    }

    #[test]
    fn tables123_reproduce_paper_rows() {
        let tables = tables123();
        let t1 = &tables[0];
        // Rd: 1 row; Rc: 5; Rs: 2; Rp: 2 — 10 total
        assert_eq!(t1.rows.len(), 10);
        assert!(t1
            .rows
            .iter()
            .any(|r| r.iter().map(String::as_str).eq(["R_course", "d1", "c1"])));
        let t2 = &tables[1];
        assert_eq!(t2.rows.len(), 2, "p1 and p2");
        let t3 = &tables[2];
        assert_eq!(t3.rows.len(), 2, "p1 and p2");
    }

    #[test]
    fn exp3_smoke_runs_and_x_is_competitive() {
        let tables = exp3(0.02, 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4);
        // every row has three timings
        for row in &t.rows {
            assert_eq!(row.len(), 4);
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn throughput_smoke_scales_shape() {
        let tables = throughput(0.01, 2);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        assert!(t.rows.len() >= 2, "at least workers = 1 and 2");
        assert_eq!(t.rows[0][0], "1");
        for row in &t.rows {
            let qps: f64 = row[3].parse().unwrap();
            assert!(qps > 0.0);
        }
        // the ablation table asserted answer equality internally
        assert_eq!(tables[1].rows.len(), 2);
    }

    #[test]
    fn analyze_report_zero_errors_and_clean_optimized_programs() {
        let tables = analyze_report();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 22, "11 workload queries × 2 opt levels");
        for row in &t.rows {
            assert!(row[4].starts_with('('), "result schema rendered: {row:?}");
            // dead statements exist only in unoptimized programs
            if row[2] == "Full" {
                assert_eq!(row[5], "0", "optimized program has warnings: {row:?}");
            }
        }
    }

    #[test]
    fn satcheck_report_proves_workloads_satisfiable_and_prunes_soundly() {
        // the soundness assertion (no Empty verdict with oracle answers)
        // runs inside satcheck_report over the random corpus
        let tables = satcheck_report();
        assert_eq!(tables.len(), 2);
        let verdicts = &tables[0];
        // every Table-5 workload query is satisfiable; every hand-picked
        // companion is proven empty with a witness
        for row in &verdicts.rows {
            if row[2] == "EMPTY" {
                assert!(row[3].starts_with('['), "witness rendered: {row:?}");
            } else {
                assert!(row[2].starts_with("non-empty"), "verdict: {row:?}");
                assert!(row[3].is_empty(), "no witness for non-empty: {row:?}");
            }
        }
        assert!(
            verdicts.rows.iter().any(|r| r[2] == "EMPTY"),
            "companions exercise the witness column"
        );
        let corpus = &tables[1];
        assert_eq!(corpus.rows.len(), 3, "Cross, Dept, GedML corpora");
        for row in &corpus.rows {
            assert_eq!(row[1], "120", "corpus size");
            assert!(row[2].parse::<usize>().unwrap() > 0, "some query pruned");
            assert_eq!(row[5], "0", "zero unsound verdicts");
        }
    }

    #[test]
    fn opt_ablation_smoke_counts_never_grow() {
        // the ≤ assertions run inside opt_ablation; answer equality too
        let tables = opt_ablation(0.01, 1);
        assert_eq!(tables.len(), 2);
        let counts = &tables[0];
        assert!(counts.rows.len() >= 10, "all workload queries reported");
        for row in &counts.rows {
            // "off → on" cells parse back and never grow
            let all: Vec<usize> = row[3].split(" → ").map(|v| v.parse().unwrap()).collect();
            assert!(all[1] <= all[0], "ALL grew in {row:?}");
        }
        let timings = &tables[1];
        assert_eq!(timings.rows.len(), 3);
    }

    #[test]
    fn exp2_smoke_push_agrees() {
        // the assert inside exp2 checks push == plain answers
        let tables = exp2(0.02, 1);
        assert_eq!(tables.len(), 2);
    }
}
