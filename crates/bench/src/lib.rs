#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! Structure:
//!
//! * [`harness`] — the three approaches (R = SQLGen-R, E = CycleE,
//!   X = CycleEX) behind one interface, dataset construction following the
//!   paper's generator protocol, and wall-clock + operator-count
//!   measurement;
//! * [`workloads`] — one function per experiment (Exp-1 … Exp-5 / Table 5,
//!   plus the concurrent-serving throughput sweep and the logical-optimizer
//!   ablation) returning printable series tables;
//! * [`loadgen`] — closed-/open-loop load generation against the serving
//!   layer's query service with an HDR-style latency histogram
//!   (p50/p95/p99) and single-flight coalescing accounting;
//! * `src/bin/repro.rs` — the command-line runner that prints the
//!   regenerated rows for every artifact;
//! * `benches/` — Criterion micro-benchmarks of representative points of
//!   each figure (smaller datasets, statistically sampled).
//!
//! Absolute numbers are not comparable to the paper's 2005 DB2 testbed;
//! EXPERIMENTS.md records the *shape* comparisons (who wins, by what
//! factor, where behaviour crosses over).

pub mod harness;
pub mod jsonbench;
pub mod loadgen;
pub mod workloads;

pub use harness::{
    dataset, measure, measure_prepared, measure_prepared_opts, measure_prepared_shared,
    measure_throughput, translate_with, Approach, Dataset, Measured, Throughput,
};
pub use jsonbench::{bench_all, bench_json, bench_table, BenchRecord};
pub use loadgen::{quick_load, run_load, Histogram, LoadConfig, LoadMode, LoadReport};
pub use workloads::{
    analyze_report, exp1, exp2, exp3, exp4, exp5, load_harness, opt_ablation, satcheck_report,
    table5, tables123, throughput, Table,
};
