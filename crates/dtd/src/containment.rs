//! DTD containment (paper §2.1): "a dtd D is contained in another dtd D'
//! if the dtd graph of D is a sub-graph of D', i.e. there is a homomorphism
//! mapping from D to D' such that the root of D is mapped to the root of D'".
//!
//! Because DTD-graph nodes are labelled with element-type names, the
//! homomorphism is forced to be name-preserving; containment therefore
//! reduces to: every type of `D` occurs in `D'`, every edge of `D` occurs in
//! `D'`, and the roots carry the same name. This is the premise of the view
//! query-answering results (§3.4): a query rewritten by `XPathToEXp` over a
//! view DTD `D` is equivalent over *all* DTDs containing `D`.

use crate::graph::DtdGraph;
use crate::model::{Dtd, ElemId};
use std::collections::HashMap;

/// Compute the containment mapping from `d` into `d2`, if any: a map from
/// each element id of `d` to the same-named element id of `d2`.
pub fn containment_of(d: &Dtd, d2: &Dtd) -> Option<HashMap<ElemId, ElemId>> {
    if d.name(d.root()) != d2.name(d2.root()) {
        return None;
    }
    let mut map = HashMap::with_capacity(d.len());
    for a in d.ids() {
        let b = d2.elem(d.name(a))?;
        map.insert(a, b);
    }
    let (g, g2) = (DtdGraph::of(d), DtdGraph::of(d2));
    for e in g.edges() {
        if !g2.has_edge(map[&e.from], map[&e.to]) {
            return None;
        }
    }
    Some(map)
}

/// True when `d` is contained in `d2`.
pub fn is_contained_in(d: &Dtd, d2: &Dtd) -> bool {
    containment_of(d, d2).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DtdBuilder;

    fn view() -> Dtd {
        // Example 3.2's D: A → B*, A → C ; B → A (recursive)
        DtdBuilder::new("A")
            .elem_star_children("A", &["B", "C"])
            .elem_star_children("B", &["A"])
            .elem_star_children("C", &[])
            .build()
            .unwrap()
    }

    fn source() -> Dtd {
        // Example 3.2's D': D plus an extra edge (B, C)
        DtdBuilder::new("A")
            .elem_star_children("A", &["B", "C"])
            .elem_star_children("B", &["A", "C"])
            .elem_star_children("C", &[])
            .build()
            .unwrap()
    }

    #[test]
    fn every_dtd_contains_itself() {
        let d = view();
        assert!(is_contained_in(&d, &d));
    }

    #[test]
    fn example_3_2_containment() {
        assert!(is_contained_in(&view(), &source()));
        assert!(
            !is_contained_in(&source(), &view()),
            "extra (B,C) edge is not in the view DTD"
        );
    }

    #[test]
    fn root_name_must_match() {
        let other = DtdBuilder::new("B")
            .elem_star_children("B", &["A", "C"])
            .elem_star_children("A", &["B", "C"])
            .elem_star_children("C", &[])
            .build()
            .unwrap();
        assert!(!is_contained_in(&view(), &other));
    }

    #[test]
    fn missing_type_fails() {
        let small = DtdBuilder::new("A")
            .elem_star_children("A", &["B"])
            .elem_star_children("B", &["A"])
            .build()
            .unwrap();
        // view() has type C which `small` lacks
        assert!(!is_contained_in(&view(), &small));
        // but small is contained in view
        assert!(is_contained_in(&small, &view()));
    }

    #[test]
    fn mapping_is_name_preserving() {
        let (d, d2) = (view(), source());
        let map = containment_of(&d, &d2).unwrap();
        for a in d.ids() {
            assert_eq!(d.name(a), d2.name(map[&a]));
        }
    }
}
