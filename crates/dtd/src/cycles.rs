//! Simple-cycle enumeration (Johnson's algorithm).
//!
//! The paper classifies evaluation DTDs as *n-cycle graphs*: "a dtd graph
//! G_D is called an n-cycle graph if G_D consists of n simple cycles, where a
//! simple cycle refers to a cycle in which no node appears more than once"
//! (§2.1). Table 5 reports the number of simple cycles `c` per DTD; we verify
//! our reconstructed sample DTDs against those counts.

use crate::graph::DtdGraph;
use crate::model::ElemId;
use std::collections::HashSet;

/// Enumerate all simple cycles of the DTD graph, each returned as the list of
/// node ids along the cycle starting from its smallest node id (the canonical
/// rotation). Cycles are returned sorted for deterministic output.
pub fn simple_cycles(graph: &DtdGraph) -> Vec<Vec<ElemId>> {
    let n = graph.node_count();
    let mut cycles = Vec::new();

    // Johnson's algorithm, specialised to small graphs: iterate start nodes s
    // in increasing order and search only within nodes ≥ s.
    for s in 0..n {
        let start = ElemId(s as u32);
        let mut blocked = vec![false; n];
        let mut block_map: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        let mut stack: Vec<ElemId> = Vec::new();
        circuit(
            graph,
            start,
            start,
            s,
            &mut blocked,
            &mut block_map,
            &mut stack,
            &mut cycles,
        );
    }
    cycles.sort();
    cycles
}

#[allow(clippy::too_many_arguments)]
fn circuit(
    graph: &DtdGraph,
    v: ElemId,
    start: ElemId,
    min: usize,
    blocked: &mut Vec<bool>,
    block_map: &mut Vec<HashSet<usize>>,
    stack: &mut Vec<ElemId>,
    cycles: &mut Vec<Vec<ElemId>>,
) -> bool {
    let mut found = false;
    stack.push(v);
    blocked[v.index()] = true;
    for &(w, _) in graph.children(v) {
        if w.index() < min {
            continue;
        }
        if w == start {
            cycles.push(stack.clone());
            found = true;
        } else if !blocked[w.index()]
            && circuit(graph, w, start, min, blocked, block_map, stack, cycles)
        {
            found = true;
        }
    }
    if found {
        unblock(v.index(), blocked, block_map);
    } else {
        for &(w, _) in graph.children(v) {
            if w.index() >= min {
                block_map[w.index()].insert(v.index());
            }
        }
    }
    stack.pop();
    found
}

fn unblock(v: usize, blocked: &mut Vec<bool>, block_map: &mut Vec<HashSet<usize>>) {
    blocked[v] = false;
    let dependents: Vec<usize> = block_map[v].drain().collect();
    for w in dependents {
        if blocked[w] {
            unblock(w, blocked, block_map);
        }
    }
}

/// Number of simple cycles (the `c` column of Table 5).
pub fn cycle_count(graph: &DtdGraph) -> usize {
    simple_cycles(graph).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Dtd, DtdBuilder};

    fn graph_of(edges: &[(&str, &str)], root: &str, nodes: &[&str]) -> (Dtd, DtdGraph) {
        let mut b = DtdBuilder::new(root);
        for &node in nodes {
            let kids: Vec<&str> = edges
                .iter()
                .filter(|(f, _)| *f == node)
                .map(|(_, t)| *t)
                .collect();
            b = b.elem_star_children(node, &kids);
        }
        let d = b.build().unwrap();
        let g = DtdGraph::of(&d);
        (d, g)
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let (_, g) = graph_of(&[("a", "b"), ("b", "c")], "a", &["a", "b", "c"]);
        assert_eq!(simple_cycles(&g).len(), 0);
    }

    #[test]
    fn self_loop_is_one_cycle() {
        let (_, g) = graph_of(&[("a", "a")], "a", &["a"]);
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
    }

    #[test]
    fn two_cycle_figure_eight() {
        // b↔c and c↔d share node c: exactly 2 simple cycles.
        let (_, g) = graph_of(
            &[("a", "b"), ("b", "c"), ("c", "b"), ("c", "d"), ("d", "c")],
            "a",
            &["a", "b", "c", "d"],
        );
        assert_eq!(cycle_count(&g), 2);
    }

    #[test]
    fn triangle_with_back_edges() {
        // a→b, b→a, b→c, c→b, a→c, c→a: 3 two-cycles + 2 three-cycles.
        let (_, g) = graph_of(
            &[
                ("a", "b"),
                ("b", "a"),
                ("b", "c"),
                ("c", "b"),
                ("a", "c"),
                ("c", "a"),
            ],
            "a",
            &["a", "b", "c"],
        );
        assert_eq!(cycle_count(&g), 5);
    }

    #[test]
    fn cycles_are_simple_and_canonical() {
        let (_, g) = graph_of(&[("a", "b"), ("b", "c"), ("c", "a")], "a", &["a", "b", "c"]);
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.len(), 3);
        // starts at the smallest node id of the cycle
        assert!(c[0] <= c[1] && c[0] <= c[2]);
        // no repeated nodes
        let set: std::collections::HashSet<_> = c.iter().collect();
        assert_eq!(set.len(), c.len());
    }
}
