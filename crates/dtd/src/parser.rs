//! A parser for DTD text syntax: a sequence of `<!ELEMENT name (model)>`
//! declarations. The first declaration names the root type (the convention
//! used by the paper's example DTD files such as BIOML and GedML).
//!
//! Supported content syntax: `EMPTY`, `ANY` (treated as text), `#PCDATA`,
//! element names, `,` sequences, `|` choices, and the `*`/`+`/`?` postfix
//! operators. Attributes (`<!ATTLIST …>`) and comments are skipped — the
//! paper does not consider attributes (§2.1).

use crate::model::{Dtd, DtdBuilder, DtdError, ModelSpec};

/// Parse DTD text into a [`Dtd`]. The first `<!ELEMENT>` is the root.
pub fn parse_dtd(input: &str) -> Result<Dtd, DtdError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut decls: Vec<(String, ModelSpec)> = Vec::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            break;
        }
        if p.eat_str("<!ELEMENT") {
            p.skip_ws();
            let name = p.name()?;
            p.skip_ws();
            let model = p.model_top()?;
            p.skip_ws();
            p.expect(b'>')?;
            decls.push((name, model));
        } else if p.eat_str("<!ATTLIST") || p.eat_str("<!ENTITY") || p.eat_str("<!NOTATION") {
            p.skip_until(b'>')?;
        } else {
            return Err(p.err("expected a `<!ELEMENT …>` declaration"));
        }
    }
    if decls.is_empty() {
        return Err(DtdError::Syntax {
            offset: 0,
            message: "empty DTD: no element declarations".into(),
        });
    }
    let root = decls[0].0.clone();
    let mut b = DtdBuilder::new(&root);
    for (name, model) in decls {
        b = b.elem(&name, model);
    }
    b.build()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, message: &str) -> DtdError {
        DtdError::Syntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace and `<!-- … -->` comments.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"<!--") {
                if let Some(end) = find(self.bytes, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
            }
            break;
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), DtdError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn skip_until(&mut self, c: u8) -> Result<(), DtdError> {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == c {
                return Ok(());
            }
        }
        Err(self.err(&format!(
            "unterminated declaration, expected `{}`",
            c as char
        )))
    }

    fn name(&mut self) -> Result<String, DtdError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// `EMPTY`, `ANY`, or a parenthesised model (with postfix operator).
    fn model_top(&mut self) -> Result<ModelSpec, DtdError> {
        if self.eat_str("EMPTY") {
            return Ok(ModelSpec::Empty);
        }
        if self.eat_str("ANY") {
            return Ok(ModelSpec::Text);
        }
        let inner = self.atom()?;
        Ok(inner)
    }

    /// choice := seq ('|' seq)*
    fn choice(&mut self) -> Result<ModelSpec, DtdError> {
        let mut parts = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.seq()?);
            } else {
                break;
            }
        }
        if parts.len() == 1 {
            if let Some(only) = parts.pop() {
                return Ok(only);
            }
        }
        Ok(ModelSpec::Choice(parts))
    }

    /// seq := atom (',' atom)*
    fn seq(&mut self) -> Result<ModelSpec, DtdError> {
        let mut parts = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                parts.push(self.atom()?);
            } else {
                break;
            }
        }
        if parts.len() == 1 {
            if let Some(only) = parts.pop() {
                return Ok(only);
            }
        }
        Ok(ModelSpec::Seq(parts))
    }

    /// atom := ('(' choice ')' | '#PCDATA' | name) ('*' | '+' | '?')?
    fn atom(&mut self) -> Result<ModelSpec, DtdError> {
        self.skip_ws();
        let base = if self.peek() == Some(b'(') {
            self.pos += 1;
            let inner = self.choice()?;
            self.skip_ws();
            self.expect(b')')?;
            inner
        } else if self.eat_str("#PCDATA") {
            ModelSpec::Text
        } else {
            ModelSpec::Elem(self.name()?)
        };
        Ok(match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                ModelSpec::Star(Box::new(base))
            }
            Some(b'+') => {
                self.pos += 1;
                ModelSpec::Plus(Box::new(base))
            }
            Some(b'?') => {
                self.pos += 1;
                ModelSpec::Opt(Box::new(base))
            }
            _ => base,
        })
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    (from..haystack.len().saturating_sub(needle.len() - 1))
        .find(|&i| haystack[i..].starts_with(needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DtdGraph;

    #[test]
    fn parses_dept_running_example() {
        let d = parse_dtd(
            r#"
            <!ELEMENT dept (course*)>
            <!ELEMENT course (cno, title, prereq, takenBy, project*)>
            <!ELEMENT prereq (course*)>
            <!ELEMENT takenBy (student*)>
            <!ELEMENT student (sno, name, qualified)>
            <!ELEMENT qualified (course*)>
            <!ELEMENT project (pno, ptitle, required)>
            <!ELEMENT required (course*)>
            <!ELEMENT cno (#PCDATA)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT sno (#PCDATA)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT pno (#PCDATA)>
            <!ELEMENT ptitle (#PCDATA)>
            "#,
        )
        .unwrap();
        assert_eq!(d.len(), 14);
        assert_eq!(d.name(d.root()), "dept");
        assert!(d.is_recursive());
        let g = DtdGraph::of(&d);
        let course = d.elem("course").unwrap();
        let prereq = d.elem("prereq").unwrap();
        assert!(g.has_edge(course, prereq));
        assert!(g.has_edge(prereq, course));
        // prereq→course is starred, course→prereq is not
        let starred = g
            .children(prereq)
            .iter()
            .find(|(c, _)| *c == course)
            .unwrap()
            .1;
        assert!(starred);
    }

    #[test]
    fn choices_and_operators() {
        let d = parse_dtd(
            "<!ELEMENT a ((b | c)+, d?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
        )
        .unwrap();
        let g = DtdGraph::of(&d);
        let a = d.elem("a").unwrap();
        assert_eq!(g.children(a).len(), 3);
        // b and c are inside a plus → starred; d is optional → not starred
        for (c, starred) in g.children(a) {
            let name = d.name(*c);
            assert_eq!(*starred, name != "d", "{name}");
        }
    }

    #[test]
    fn skips_comments_and_attlist() {
        let d = parse_dtd(
            "<!-- hi --> <!ELEMENT a (b*)> <!ATTLIST a id CDATA #REQUIRED> <!ELEMENT b EMPTY>",
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_dtd("<!ELEMEN a (b)>").is_err());
        assert!(parse_dtd("<!ELEMENT a (b>").is_err());
        assert!(parse_dtd("").is_err());
    }

    #[test]
    fn mixed_content() {
        let d = parse_dtd("<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b (#PCDATA)>").unwrap();
        assert!(d.allows_text(d.elem("a").unwrap()));
        let g = DtdGraph::of(&d);
        assert!(g.children(d.elem("a").unwrap())[0].1, "b repeats under a");
    }
}
