#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! DTD machinery for the `xpath2sql` reproduction of Fan et al.,
//! *"Query Translation from XPath to SQL in the Presence of Recursive DTDs"*
//! (VLDB 2005 / VLDB Journal 18(4), 2009).
//!
//! A DTD is modelled as an extended context-free grammar `(Ele, Rg, r)`
//! (paper §2.1): a finite set of element types, a production `Rg(A)` per type
//! given as a regular expression over types, and a distinguished root type.
//!
//! The crate provides:
//!
//! * [`Dtd`] / [`ContentModel`] — the grammar itself, plus a parser for DTD
//!   text syntax (`<!ELEMENT a (b*, (c | d))>`) in [`parser`];
//! * [`DtdGraph`] — the paper's graph representation `G_D` (one node per
//!   element type, edges labelled `*` when the child is enclosed in a starred
//!   sub-expression) with reachability, recursion detection and simple-cycle
//!   enumeration ([`cycles`], Johnson's algorithm) used to classify *n-cycle
//!   graphs*;
//! * [`containment`] — the "DTD `D` is contained in `D'`" test of §2.1 (the
//!   DTD graph of `D` is a subgraph of that of `D'`, root mapped to root),
//!   which underpins query answering over XML views (§3.4);
//! * [`samples`] — every DTD used in the paper: the running `dept` example
//!   (Fig. 1), the cross-cycle graph (Fig. 11a), the reconstructed BIOML
//!   subgraphs (Fig. 15a–d / Fig. 11b), the reconstructed GedML graph
//!   (Fig. 11c), and the complete-DAG families of Examples 3.2/3.3.

pub mod containment;
pub mod cycles;
pub mod graph;
pub mod model;
pub mod parser;
pub mod samples;

pub use containment::{containment_of, is_contained_in};
pub use cycles::simple_cycles;
pub use graph::{DtdGraph, Edge};
pub use model::{ContentModel, Dtd, DtdBuilder, DtdError, ElemId, ModelSpec};
pub use parser::parse_dtd;
