//! The DTD grammar model: element types, content models, and the [`Dtd`] type.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an element type within one [`Dtd`] (dense index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub u32);

impl ElemId {
    /// The dense index of this type.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A content model `α` (paper §2.1):
/// `α ::= ε | B | α, α | (α | α) | α*`, extended with the standard DTD
/// operators `+`, `?` and `#PCDATA` so that real DTD files parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContentModel {
    /// The empty word ε (also used for `EMPTY` declarations).
    Empty,
    /// `#PCDATA` — the element carries a text value.
    Text,
    /// A sub-element type `B`.
    Elem(ElemId),
    /// Concatenation `α, α, …`.
    Seq(Vec<ContentModel>),
    /// Disjunction `(α | α | …)`.
    Choice(Vec<ContentModel>),
    /// Kleene star `α*`.
    Star(Box<ContentModel>),
    /// One-or-more `α+`.
    Plus(Box<ContentModel>),
    /// Optional `α?`.
    Opt(Box<ContentModel>),
}

impl ContentModel {
    /// All element types mentioned in this model, with a flag telling whether
    /// the occurrence is *starred* — i.e. enclosed in a `*` or `+`
    /// sub-expression, so the child may repeat (this is the `*` edge label of
    /// the DTD graph, paper §2.1).
    pub fn child_occurrences(&self) -> Vec<(ElemId, bool)> {
        let mut out = Vec::new();
        self.collect_children(false, &mut out);
        out
    }

    fn collect_children(&self, starred: bool, out: &mut Vec<(ElemId, bool)>) {
        match self {
            ContentModel::Empty | ContentModel::Text => {}
            ContentModel::Elem(id) => out.push((*id, starred)),
            ContentModel::Seq(parts) | ContentModel::Choice(parts) => {
                for p in parts {
                    p.collect_children(starred, out);
                }
            }
            ContentModel::Star(inner) | ContentModel::Plus(inner) => {
                inner.collect_children(true, out);
            }
            ContentModel::Opt(inner) => inner.collect_children(starred, out),
        }
    }

    /// Element types that occur at least once in **every** word of the
    /// model — the children a valid element is *guaranteed* to have.
    /// Sequencing requires the union of its parts' required sets, a choice
    /// only what every alternative requires, and `*`/`?` require nothing.
    /// The dual of [`child_occurrences`](Self::child_occurrences) (may vs
    /// must), used by static query analysis to certify qualifiers that can
    /// never fail on a valid document.
    pub fn required_children(&self) -> Vec<ElemId> {
        let mut out = match self {
            ContentModel::Empty | ContentModel::Text => Vec::new(),
            ContentModel::Elem(id) => vec![*id],
            ContentModel::Seq(parts) => {
                let mut all = Vec::new();
                for p in parts {
                    all.extend(p.required_children());
                }
                all
            }
            ContentModel::Choice(parts) => {
                let mut sets = parts.iter().map(|p| p.required_children());
                match sets.next() {
                    None => Vec::new(),
                    Some(first) => sets.fold(first, |acc, next| {
                        acc.into_iter().filter(|id| next.contains(id)).collect()
                    }),
                }
            }
            ContentModel::Star(_) | ContentModel::Opt(_) => Vec::new(),
            ContentModel::Plus(inner) => inner.required_children(),
        };
        out.sort_by_key(|id| id.0);
        out.dedup();
        out
    }

    /// Whether the model permits a text value anywhere.
    pub fn allows_text(&self) -> bool {
        match self {
            ContentModel::Text => true,
            ContentModel::Empty | ContentModel::Elem(_) => false,
            ContentModel::Seq(ps) | ContentModel::Choice(ps) => ps.iter().any(|p| p.allows_text()),
            ContentModel::Star(p) | ContentModel::Plus(p) | ContentModel::Opt(p) => p.allows_text(),
        }
    }
}

/// Errors raised while building or parsing DTDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// An element type was declared twice.
    DuplicateElement(String),
    /// A content model references an undeclared element type.
    UnknownElement(String),
    /// The root type is not declared.
    UnknownRoot(String),
    /// Syntax error while parsing DTD text.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::DuplicateElement(n) => write!(f, "duplicate element declaration: {n}"),
            DtdError::UnknownElement(n) => write!(f, "reference to undeclared element: {n}"),
            DtdError::UnknownRoot(n) => write!(f, "root element is not declared: {n}"),
            DtdError::Syntax { offset, message } => {
                write!(f, "DTD syntax error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for DtdError {}

/// A DTD `(Ele, Rg, r)` — paper §2.1.
///
/// Element types are interned: each carries a dense [`ElemId`] used across
/// the whole workspace (graphs, shredded relations, generated documents).
#[derive(Clone, Debug)]
pub struct Dtd {
    names: Vec<String>,
    by_name: HashMap<String, ElemId>,
    content: Vec<ContentModel>,
    root: ElemId,
}

impl Dtd {
    /// Number of element types.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the DTD declares no element types (never true for built DTDs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The root element type `r`.
    #[inline]
    pub fn root(&self) -> ElemId {
        self.root
    }

    /// Name of an element type.
    #[inline]
    pub fn name(&self, id: ElemId) -> &str {
        &self.names[id.index()]
    }

    /// Look up an element type by name.
    #[inline]
    pub fn elem(&self, name: &str) -> Option<ElemId> {
        self.by_name.get(name).copied()
    }

    /// The production `Rg(A)` of a type.
    #[inline]
    pub fn content(&self, id: ElemId) -> &ContentModel {
        &self.content[id.index()]
    }

    /// Iterate over all element ids.
    pub fn ids(&self) -> impl Iterator<Item = ElemId> + '_ {
        (0..self.names.len() as u32).map(ElemId)
    }

    /// Whether elements of this type may carry text (PCDATA).
    pub fn allows_text(&self, id: ElemId) -> bool {
        self.content[id.index()].allows_text()
    }

    /// A DTD is *recursive* when some type is defined (transitively) in terms
    /// of itself — equivalently, when its DTD graph is cyclic (paper §2.1).
    pub fn is_recursive(&self) -> bool {
        crate::graph::DtdGraph::of(self).is_cyclic()
    }

    /// Render the DTD back to `<!ELEMENT …>` text syntax.
    pub fn to_dtd_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for id in self.ids() {
            let _ = writeln!(
                s,
                "<!ELEMENT {} {}>",
                self.name(id),
                self.render_model(self.content(id), true)
            );
        }
        s
    }

    fn render_model(&self, cm: &ContentModel, top: bool) -> String {
        match cm {
            ContentModel::Empty => "EMPTY".into(),
            ContentModel::Text => "(#PCDATA)".into(),
            ContentModel::Elem(id) => {
                if top {
                    format!("({})", self.name(*id))
                } else {
                    self.name(*id).to_string()
                }
            }
            ContentModel::Seq(ps) => {
                let inner: Vec<_> = ps.iter().map(|p| self.render_model(p, false)).collect();
                format!("({})", inner.join(", "))
            }
            ContentModel::Choice(ps) => {
                let inner: Vec<_> = ps.iter().map(|p| self.render_model(p, false)).collect();
                format!("({})", inner.join(" | "))
            }
            ContentModel::Star(p) => format!("{}*", self.render_atom(p)),
            ContentModel::Plus(p) => format!("{}+", self.render_atom(p)),
            ContentModel::Opt(p) => format!("{}?", self.render_atom(p)),
        }
    }

    fn render_atom(&self, cm: &ContentModel) -> String {
        match cm {
            ContentModel::Elem(id) => format!("({})", self.name(*id)),
            other => self.render_model(other, false),
        }
    }
}

/// Convenience constructors for content models used by builders and tests.
pub mod cm {
    use super::ContentModel;

    /// ε
    pub fn empty() -> ContentModel {
        ContentModel::Empty
    }
    /// `#PCDATA`
    pub fn text() -> ContentModel {
        ContentModel::Text
    }
    /// Sequence
    pub fn seq(parts: Vec<ContentModel>) -> ContentModel {
        ContentModel::Seq(parts)
    }
    /// Choice
    pub fn choice(parts: Vec<ContentModel>) -> ContentModel {
        ContentModel::Choice(parts)
    }
    /// Star
    pub fn star(inner: ContentModel) -> ContentModel {
        ContentModel::Star(Box::new(inner))
    }
    /// Plus
    pub fn plus(inner: ContentModel) -> ContentModel {
        ContentModel::Plus(Box::new(inner))
    }
    /// Opt
    pub fn opt(inner: ContentModel) -> ContentModel {
        ContentModel::Opt(Box::new(inner))
    }
}

/// Builder for [`Dtd`] values.
///
/// Content models are specified with element *names*; ids are interned when
/// [`DtdBuilder::build`] runs. Names referenced before declaration are fine —
/// all declarations are read first.
pub struct DtdBuilder {
    root: String,
    decls: Vec<(String, ModelSpec)>,
}

/// A content-model specification over element names (pre-interning).
#[derive(Clone, Debug)]
pub enum ModelSpec {
    /// ε
    Empty,
    /// `#PCDATA`
    Text,
    /// Named element
    Elem(String),
    /// Concatenation
    Seq(Vec<ModelSpec>),
    /// Disjunction
    Choice(Vec<ModelSpec>),
    /// Kleene star
    Star(Box<ModelSpec>),
    /// One or more
    Plus(Box<ModelSpec>),
    /// Optional
    Opt(Box<ModelSpec>),
}

impl ModelSpec {
    /// `name*`
    pub fn star_of(name: &str) -> ModelSpec {
        ModelSpec::Star(Box::new(ModelSpec::Elem(name.into())))
    }
    /// `name`
    pub fn elem(name: &str) -> ModelSpec {
        ModelSpec::Elem(name.into())
    }
}

impl DtdBuilder {
    /// Start building a DTD rooted at `root`.
    pub fn new(root: &str) -> Self {
        DtdBuilder {
            root: root.to_string(),
            decls: Vec::new(),
        }
    }

    /// Declare `name` with the given content model.
    pub fn elem(mut self, name: &str, model: ModelSpec) -> Self {
        self.decls.push((name.to_string(), model));
        self
    }

    /// Declare `name` with content `(c1*, c2*, …, #PCDATA)` — the common
    /// shape for the paper's graph-style DTDs where every child may repeat
    /// and any element may carry a text value (paper §2.1 assumes elements
    /// may carry PCDATA).
    pub fn elem_star_children(self, name: &str, children: &[&str]) -> Self {
        let model = if children.is_empty() {
            ModelSpec::Text
        } else {
            let mut parts: Vec<ModelSpec> =
                children.iter().map(|c| ModelSpec::star_of(c)).collect();
            parts.push(ModelSpec::Text);
            ModelSpec::Seq(parts)
        };
        self.elem(name, model)
    }

    /// Intern names and produce the [`Dtd`].
    pub fn build(self) -> Result<Dtd, DtdError> {
        let mut names = Vec::with_capacity(self.decls.len());
        let mut by_name = HashMap::with_capacity(self.decls.len());
        for (name, _) in &self.decls {
            if by_name.contains_key(name) {
                return Err(DtdError::DuplicateElement(name.clone()));
            }
            by_name.insert(name.clone(), ElemId(names.len() as u32));
            names.push(name.clone());
        }
        let root = *by_name
            .get(&self.root)
            .ok_or_else(|| DtdError::UnknownRoot(self.root.clone()))?;
        let mut content = Vec::with_capacity(self.decls.len());
        for (_, spec) in &self.decls {
            content.push(lower(spec, &by_name)?);
        }
        Ok(Dtd {
            names,
            by_name,
            content,
            root,
        })
    }
}

fn lower(spec: &ModelSpec, by_name: &HashMap<String, ElemId>) -> Result<ContentModel, DtdError> {
    Ok(match spec {
        ModelSpec::Empty => ContentModel::Empty,
        ModelSpec::Text => ContentModel::Text,
        ModelSpec::Elem(n) => ContentModel::Elem(
            *by_name
                .get(n)
                .ok_or_else(|| DtdError::UnknownElement(n.clone()))?,
        ),
        ModelSpec::Seq(ps) => ContentModel::Seq(
            ps.iter()
                .map(|p| lower(p, by_name))
                .collect::<Result<_, _>>()?,
        ),
        ModelSpec::Choice(ps) => ContentModel::Choice(
            ps.iter()
                .map(|p| lower(p, by_name))
                .collect::<Result<_, _>>()?,
        ),
        ModelSpec::Star(p) => ContentModel::Star(Box::new(lower(p, by_name)?)),
        ModelSpec::Plus(p) => ContentModel::Plus(Box::new(lower(p, by_name)?)),
        ModelSpec::Opt(p) => ContentModel::Opt(Box::new(lower(p, by_name)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dtd {
        DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("b"))
            .elem(
                "b",
                ModelSpec::Seq(vec![ModelSpec::elem("c"), ModelSpec::Text]),
            )
            .elem("c", ModelSpec::Empty)
            .build()
            .unwrap()
    }

    #[test]
    fn intern_and_lookup() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        let a = d.elem("a").unwrap();
        assert_eq!(d.name(a), "a");
        assert_eq!(d.root(), a);
        assert!(d.elem("zzz").is_none());
    }

    #[test]
    fn child_occurrences_star_labels() {
        let d = tiny();
        let a = d.elem("a").unwrap();
        let occ = d.content(a).child_occurrences();
        assert_eq!(occ, vec![(d.elem("b").unwrap(), true)]);
        let b = d.elem("b").unwrap();
        let occ = d.content(b).child_occurrences();
        assert_eq!(occ, vec![(d.elem("c").unwrap(), false)]);
    }

    #[test]
    fn plus_counts_as_starred_opt_does_not() {
        let d = DtdBuilder::new("a")
            .elem(
                "a",
                ModelSpec::Seq(vec![
                    ModelSpec::Plus(Box::new(ModelSpec::elem("b"))),
                    ModelSpec::Opt(Box::new(ModelSpec::elem("c"))),
                ]),
            )
            .elem("b", ModelSpec::Empty)
            .elem("c", ModelSpec::Empty)
            .build()
            .unwrap();
        let occ = d.content(d.elem("a").unwrap()).child_occurrences();
        assert_eq!(
            occ,
            vec![(d.elem("b").unwrap(), true), (d.elem("c").unwrap(), false)]
        );
    }

    #[test]
    fn allows_text() {
        let d = tiny();
        assert!(!d.allows_text(d.elem("a").unwrap()));
        assert!(d.allows_text(d.elem("b").unwrap()));
        assert!(!d.allows_text(d.elem("c").unwrap()));
    }

    #[test]
    fn duplicate_element_rejected() {
        let err = DtdBuilder::new("a")
            .elem("a", ModelSpec::Empty)
            .elem("a", ModelSpec::Empty)
            .build()
            .unwrap_err();
        assert_eq!(err, DtdError::DuplicateElement("a".into()));
    }

    #[test]
    fn unknown_root_rejected() {
        let err = DtdBuilder::new("zzz")
            .elem("a", ModelSpec::Empty)
            .build()
            .unwrap_err();
        assert_eq!(err, DtdError::UnknownRoot("zzz".into()));
    }

    #[test]
    fn unknown_child_rejected() {
        let err = DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("ghost"))
            .build()
            .unwrap_err();
        assert_eq!(err, DtdError::UnknownElement("ghost".into()));
    }

    #[test]
    fn recursion_detection() {
        let rec = DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("b"))
            .elem("b", ModelSpec::star_of("a"))
            .build()
            .unwrap();
        assert!(rec.is_recursive());
        assert!(!tiny().is_recursive());
    }

    #[test]
    fn dtd_text_round_trip_shape() {
        let d = tiny();
        let text = d.to_dtd_text();
        assert!(text.contains("<!ELEMENT a (b)*>") || text.contains("<!ELEMENT a (b*)"));
        assert!(text.contains("c"));
    }
}
