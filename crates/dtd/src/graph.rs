//! The DTD graph `G_D` (paper §2.1): one node per element type, an edge
//! `A → B` for every sub-element type `B` in `Rg(A)`, labelled `*` when `B`
//! is enclosed in a starred sub-expression.

use crate::model::{Dtd, ElemId};
use std::collections::HashSet;

/// One parent/child edge of the DTD graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Parent type.
    pub from: ElemId,
    /// Child type.
    pub to: ElemId,
    /// Whether the child occurrence is enclosed in `*`/`+` (may repeat).
    pub starred: bool,
}

/// A compact bitset over element ids (the graphs here have ≤ a few hundred
/// nodes, so `Vec<u64>` words are plenty).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    /// Empty set sized for `n` ids.
    pub fn new(n: usize) -> Self {
        IdSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert; returns true when newly inserted.
    #[inline]
    pub fn insert(&mut self, id: ElemId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: ElemId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|word| word >> b & 1 == 1)
    }

    /// In-place union; returns true when `self` changed.
    pub fn union_with(&mut self, other: &IdSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Iterate members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| ElemId((wi * 64 + b) as u32))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no member is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The DTD graph with derived reachability information.
///
/// `reach_strict(a)` is the set of types reachable from `a` via **one or
/// more** edges (used for `//`); `reaches(a, b)` additionally treats every
/// node as reaching itself (descendant-*or-self*).
#[derive(Clone, Debug)]
pub struct DtdGraph {
    n: usize,
    children: Vec<Vec<(ElemId, bool)>>,
    parents: Vec<Vec<ElemId>>,
    edges: Vec<Edge>,
    edge_set: HashSet<(ElemId, ElemId)>,
    /// reach_plus[a] = types reachable from a via ≥1 edges.
    reach_plus: Vec<IdSet>,
}

impl DtdGraph {
    /// Build the graph of a DTD.
    pub fn of(dtd: &Dtd) -> Self {
        let n = dtd.len();
        let mut children: Vec<Vec<(ElemId, bool)>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<ElemId>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        let mut edge_set = HashSet::new();
        for a in dtd.ids() {
            let mut seen_here: HashSet<ElemId> = HashSet::new();
            for (b, starred) in dtd.content(a).child_occurrences() {
                // The DTD graph has at most one A→B edge; if any occurrence is
                // starred the edge is starred (it may repeat).
                if seen_here.insert(b) {
                    children[a.index()].push((b, starred));
                    parents[b.index()].push(a);
                    edges.push(Edge {
                        from: a,
                        to: b,
                        starred,
                    });
                    edge_set.insert((a, b));
                } else if starred {
                    for (c, s) in children[a.index()].iter_mut() {
                        if *c == b {
                            *s = true;
                        }
                    }
                    for e in edges.iter_mut() {
                        if e.from == a && e.to == b {
                            e.starred = true;
                        }
                    }
                }
            }
        }
        let reach_plus = compute_reach_plus(n, &children);
        DtdGraph {
            n,
            children,
            parents,
            edges,
            edge_set,
            reach_plus,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-neighbours of `a` with their `*` labels.
    #[inline]
    pub fn children(&self, a: ElemId) -> &[(ElemId, bool)] {
        &self.children[a.index()]
    }

    /// In-neighbours of `b`.
    #[inline]
    pub fn parents(&self, b: ElemId) -> &[ElemId] {
        &self.parents[b.index()]
    }

    /// Whether the edge `a → b` exists.
    #[inline]
    pub fn has_edge(&self, a: ElemId, b: ElemId) -> bool {
        self.edge_set.contains(&(a, b))
    }

    /// Types reachable from `a` via one or more edges.
    #[inline]
    pub fn reach_strict(&self, a: ElemId) -> &IdSet {
        &self.reach_plus[a.index()]
    }

    /// Descendant-or-self reachability: `a == b` or `a` reaches `b`.
    #[inline]
    pub fn reaches_or_self(&self, a: ElemId, b: ElemId) -> bool {
        a == b || self.reach_plus[a.index()].contains(b)
    }

    /// Whether the graph has a cycle (i.e. the DTD is recursive).
    pub fn is_cyclic(&self) -> bool {
        (0..self.n).any(|i| self.reach_plus[i].contains(ElemId(i as u32)))
    }

    /// Nodes lying on some path from `a` to `b` (both endpoints included when
    /// they participate). Used by SQLGen-R's query graph construction.
    pub fn nodes_on_paths(&self, a: ElemId, b: ElemId) -> Vec<ElemId> {
        let mut out = Vec::new();
        for c in (0..self.n as u32).map(ElemId) {
            let from_a = a == c || self.reach_plus[a.index()].contains(c);
            let to_b = c == b || self.reach_plus[c.index()].contains(b);
            if from_a && to_b {
                out.push(c);
            }
        }
        out
    }
}

fn compute_reach_plus(n: usize, children: &[Vec<(ElemId, bool)>]) -> Vec<IdSet> {
    // Semi-naive closure: start from direct edges, propagate until fixpoint.
    let mut reach: Vec<IdSet> = (0..n).map(|_| IdSet::new(n)).collect();
    for (a, kids) in children.iter().enumerate() {
        for (b, _) in kids {
            reach[a].insert(*b);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            // reach[a] |= union of reach[b] for direct children b
            let mut acc = reach[a].clone();
            for (b, _) in &children[a] {
                let rb = reach[b.index()].clone();
                acc.union_with(&rb);
            }
            if acc != reach[a] {
                reach[a] = acc;
                changed = true;
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DtdBuilder, ModelSpec};

    fn chain() -> Dtd {
        DtdBuilder::new("a")
            .elem("a", ModelSpec::star_of("b"))
            .elem("b", ModelSpec::star_of("c"))
            .elem("c", ModelSpec::Empty)
            .build()
            .unwrap()
    }

    fn cyclic() -> Dtd {
        DtdBuilder::new("a")
            .elem_star_children("a", &["b"])
            .elem_star_children("b", &["c"])
            .elem_star_children("c", &["b", "d"])
            .elem_star_children("d", &[])
            .build()
            .unwrap()
    }

    #[test]
    fn edges_and_star_labels() {
        let d = chain();
        let g = DtdGraph::of(&d);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let (a, b) = (d.elem("a").unwrap(), d.elem("b").unwrap());
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert!(g.children(a)[0].1, "a→b must be starred");
    }

    #[test]
    fn duplicate_occurrence_merges_to_one_edge() {
        // a → (b, b*) : single edge, starred because one occurrence repeats.
        let d = DtdBuilder::new("a")
            .elem(
                "a",
                ModelSpec::Seq(vec![ModelSpec::elem("b"), ModelSpec::star_of("b")]),
            )
            .elem("b", ModelSpec::Empty)
            .build()
            .unwrap();
        let g = DtdGraph::of(&d);
        assert_eq!(g.edge_count(), 1);
        assert!(g.edges()[0].starred);
    }

    #[test]
    fn reachability_strict_vs_or_self() {
        let d = chain();
        let g = DtdGraph::of(&d);
        let (a, c) = (d.elem("a").unwrap(), d.elem("c").unwrap());
        assert!(g.reach_strict(a).contains(c));
        assert!(!g.reach_strict(c).contains(c));
        assert!(g.reaches_or_self(c, c));
        assert!(!g.is_cyclic());
    }

    #[test]
    fn cyclic_reachability() {
        let d = cyclic();
        let g = DtdGraph::of(&d);
        let b = d.elem("b").unwrap();
        assert!(g.is_cyclic());
        assert!(g.reach_strict(b).contains(b), "b→c→b loop");
    }

    #[test]
    fn nodes_on_paths() {
        let d = cyclic();
        let g = DtdGraph::of(&d);
        let (a, dd) = (d.elem("a").unwrap(), d.elem("d").unwrap());
        let nodes = g.nodes_on_paths(a, dd);
        // every node lies on some a→…→d path here
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn idset_basics() {
        let mut s = IdSet::new(130);
        assert!(s.insert(ElemId(0)));
        assert!(s.insert(ElemId(129)));
        assert!(!s.insert(ElemId(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ElemId(129)));
        assert!(!s.contains(ElemId(64)));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![ElemId(0), ElemId(129)]);
    }

    #[test]
    fn idset_union() {
        let mut a = IdSet::new(10);
        let mut b = IdSet::new(10);
        a.insert(ElemId(1));
        b.insert(ElemId(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.len(), 2);
    }
}
