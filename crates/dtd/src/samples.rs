// Sample DTDs are compile-time constant data: a `build()` failure here is a
// bug caught by this crate's tests, not a runtime error path, so the
// panicking constructors are the intended contract.
#![allow(clippy::expect_used)]

//! Every DTD used by the paper, reconstructed.
//!
//! The evaluation DTDs (Cross, BIOML, GedML) are only ever used by the paper
//! as *n-cycle graphs* with known (node, edge, simple-cycle) counts — Table 5
//! gives `(n, m, c)` for each. The original DTD files are not reproduced in
//! the paper, so we reconstruct graphs that (a) match Table 5's counts
//! exactly, (b) support the reachability each benchmark query needs, and
//! (c) keep the element names used in the text. Tests at the bottom pin the
//! counts.
//!
//! | DTD      | paper source | n | m  | c |
//! |----------|--------------|---|----|---|
//! | Cross    | Fig. 11a     | 4 | 5  | 2 |
//! | BIOML a  | Fig. 15a     | 4 | 5  | 2 |
//! | BIOML b  | Fig. 15b     | 4 | 6  | 3 |
//! | BIOML c  | Fig. 15c     | 4 | 6  | 3 |
//! | BIOML d  | Fig. 15d/11b | 4 | 7  | 4 |
//! | GedML    | Fig. 11c     | 5 | 11 | 9 |

use crate::model::{Dtd, DtdBuilder, ModelSpec};

/// The running `dept` example (Example 2.1 / Fig. 1a): a 3-cycle DTD with
/// full element inventory (cno, title, …).
pub fn dept() -> Dtd {
    DtdBuilder::new("dept")
        .elem("dept", ModelSpec::star_of("course"))
        .elem(
            "course",
            ModelSpec::Seq(vec![
                ModelSpec::elem("cno"),
                ModelSpec::elem("title"),
                ModelSpec::elem("prereq"),
                ModelSpec::elem("takenBy"),
                ModelSpec::star_of("project"),
            ]),
        )
        .elem("prereq", ModelSpec::star_of("course"))
        .elem("takenBy", ModelSpec::star_of("student"))
        .elem(
            "student",
            ModelSpec::Seq(vec![
                ModelSpec::elem("sno"),
                ModelSpec::elem("name"),
                ModelSpec::elem("qualified"),
            ]),
        )
        .elem("qualified", ModelSpec::star_of("course"))
        .elem(
            "project",
            ModelSpec::Seq(vec![
                ModelSpec::elem("pno"),
                ModelSpec::elem("ptitle"),
                ModelSpec::elem("required"),
            ]),
        )
        .elem("required", ModelSpec::star_of("course"))
        .elem("cno", ModelSpec::Text)
        .elem("title", ModelSpec::Text)
        .elem("sno", ModelSpec::Text)
        .elem("name", ModelSpec::Text)
        .elem("pno", ModelSpec::Text)
        .elem("ptitle", ModelSpec::Text)
        .build()
        .expect("dept DTD is well-formed")
}

/// The *simplified* dept DTD of Fig. 1b, after shared-inlining collapses
/// `prereq`, `takenBy`, `qualified`, `required` and the scalar types into the
/// four relation roots `dept`, `course`, `student`, `project`. Used by
/// Examples 3.1 / 3.5 (`Rd`, `Rc`, `Rs`, `Rp`).
pub fn dept_simplified() -> Dtd {
    DtdBuilder::new("dept")
        .elem_star_children("dept", &["course"])
        .elem_star_children("course", &["course", "student", "project"])
        .elem_star_children("student", &["course"])
        .elem_star_children("project", &["course"])
        .build()
        .expect("simplified dept DTD is well-formed")
}

/// The cross-cycle DTD of Fig. 11a: 4 nodes, 5 edges, 2 simple cycles that
/// *cross* at the shared root `a` (a↔b and a↔c), plus the sink edge c→d.
/// This shape makes `a` recursive, which Exp-2 requires (it selects up to
/// 50 000 qualified `a` elements), and supports every Exp-1 query:
/// Qa = `a/b//c/d`, Qb = `a[//c]//d`, Qc = `a[¬//c]`, Qd = `a[¬//c ∨ (b ∧ //d)]`.
pub fn cross() -> Dtd {
    DtdBuilder::new("a")
        .elem_star_children("a", &["b", "c"])
        .elem_star_children("b", &["a"])
        .elem_star_children("c", &["a", "d"])
        .elem_star_children("d", &[])
        .build()
        .expect("cross DTD is well-formed")
}

/// BIOML subgraph of Fig. 15a: the two base cycles gene↔dna and dna↔clone
/// plus gene→locus. (4 nodes, 5 edges, 2 cycles.)
pub fn bioml_a() -> Dtd {
    bioml_with(&[])
}

/// BIOML subgraph of Fig. 15b: Fig. 15a + locus→gene (adds the gene↔locus
/// cycle). (4 nodes, 6 edges, 3 cycles.)
pub fn bioml_b() -> Dtd {
    bioml_with(&[("locus", "gene")])
}

/// BIOML subgraph of Fig. 15c: Fig. 15a + clone→gene (adds the 3-cycle
/// gene→dna→clone→gene). (4 nodes, 6 edges, 3 cycles.)
pub fn bioml_c() -> Dtd {
    bioml_with(&[("clone", "gene")])
}

/// BIOML graph of Fig. 15d — the full 4-cycle graph of Fig. 11b: Fig. 15a +
/// locus→gene + clone→gene. (4 nodes, 7 edges, 4 cycles.) Note: the paper's
/// Table 4 labels this graph "3 cycles" for case 3b while Table 5 reports
/// c = 4 for the same figure; we follow Table 5.
pub fn bioml_d() -> Dtd {
    bioml_with(&[("locus", "gene"), ("clone", "gene")])
}

/// Alias: Fig. 11b is the largest 4-cycle BIOML graph (= Fig. 15d).
pub fn bioml() -> Dtd {
    bioml_d()
}

fn bioml_with(extra: &[(&str, &str)]) -> Dtd {
    let base: &[(&str, &str)] = &[
        ("gene", "dna"),
        ("dna", "gene"),
        ("dna", "clone"),
        ("clone", "dna"),
        ("gene", "locus"),
    ];
    let edges: Vec<(&str, &str)> = base.iter().chain(extra).copied().collect();
    build_from_edges("gene", &["gene", "dna", "clone", "locus"], &edges)
}

/// The GedML DTD of Fig. 11c: 5 nodes (`Even`, `Sour`, `Note`, `Obje`,
/// `Data`), 11 edges, 9 simple cycles, rooted at `Even` so that the
/// benchmark query `Even//Data` starts at the document root.
///
/// Edge set (reconstructed; counts pinned by tests):
/// the complete bidirected triangle on {Note, Obje, Sour} (6 edges, 5 simple
/// cycles), Sour↔Data (1 cycle), Data→Even with Even→Sour (1 cycle) and
/// Even→Obje (2 more cycles via Obje's paths back to Data) — 9 in total.
pub fn gedml() -> Dtd {
    build_from_edges(
        "Even",
        &["Even", "Sour", "Note", "Obje", "Data"],
        &[
            ("Note", "Obje"),
            ("Obje", "Note"),
            ("Note", "Sour"),
            ("Sour", "Note"),
            ("Obje", "Sour"),
            ("Sour", "Obje"),
            ("Sour", "Data"),
            ("Data", "Sour"),
            ("Data", "Even"),
            ("Even", "Sour"),
            ("Even", "Obje"),
        ],
    )
}

/// Example 3.2's view DTD `D`: A → (B*, C*), B → A*. Recursive via A↔B.
pub fn example_3_2_view() -> Dtd {
    build_from_edges("A", &["A", "B", "C"], &[("A", "B"), ("A", "C"), ("B", "A")])
}

/// Example 3.2's source DTD `D'`: `D` plus the edge (B, C).
pub fn example_3_2_source() -> Dtd {
    build_from_edges(
        "A",
        &["A", "B", "C"],
        &[("A", "B"), ("A", "C"), ("B", "A"), ("B", "C")],
    )
}

/// Example 3.3's view DTD `D1`: the complete DAG on `A1..An` (edges
/// `(Ai, Aj)` for i < j), rooted at `A1`. Fig. 3c shows n = 4.
pub fn complete_dag(n: usize) -> Dtd {
    assert!(n >= 2, "complete_dag needs at least two nodes");
    let names: Vec<String> = (1..=n).map(|i| format!("A{i}")).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            edges.push((names[i].clone(), names[j].clone()));
        }
    }
    build_from_owned_edges("A1", &names, &edges)
}

/// Example 3.3's source DTD `D2`: `D1` plus a node `B` with edges `(B, An)`
/// and `(Ai, B)` for i < n. Fig. 3d shows n = 4.
pub fn complete_dag_with_b(n: usize) -> Dtd {
    assert!(n >= 2, "complete_dag_with_b needs at least two nodes");
    let mut names: Vec<String> = (1..=n).map(|i| format!("A{i}")).collect();
    names.push("B".to_string());
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            edges.push((names[i].clone(), names[j].clone()));
        }
    }
    for name in names.iter().take(n - 1) {
        edges.push((name.clone(), "B".to_string()));
    }
    edges.push(("B".to_string(), names[n - 1].clone()));
    build_from_owned_edges("A1", &names, &edges)
}

/// Build a DTD whose graph is exactly the given edge set, every edge starred
/// (each child may repeat), every element allowed a text value.
pub fn build_from_edges(root: &str, nodes: &[&str], edges: &[(&str, &str)]) -> Dtd {
    let owned: Vec<(String, String)> = edges
        .iter()
        .map(|(f, t)| (f.to_string(), t.to_string()))
        .collect();
    let names: Vec<String> = nodes.iter().map(|s| s.to_string()).collect();
    build_from_owned_edges(root, &names, &owned)
}

fn build_from_owned_edges(root: &str, nodes: &[String], edges: &[(String, String)]) -> Dtd {
    let mut b = DtdBuilder::new(root);
    for node in nodes {
        let kids: Vec<&str> = edges
            .iter()
            .filter(|(f, _)| f == node)
            .map(|(_, t)| t.as_str())
            .collect();
        b = b.elem_star_children(node, &kids);
    }
    b.build().expect("edge-list DTD is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::cycle_count;
    use crate::graph::DtdGraph;

    fn nmc(d: &Dtd) -> (usize, usize, usize) {
        let g = DtdGraph::of(d);
        (g.node_count(), g.edge_count(), cycle_count(&g))
    }

    #[test]
    fn dept_is_a_3_cycle_graph() {
        let d = dept();
        let g = DtdGraph::of(&d);
        assert_eq!(g.node_count(), 14);
        assert_eq!(
            cycle_count(&g),
            3,
            "course↔prereq, course↔takenBy↔…, course↔project↔…"
        );
        assert!(d.is_recursive());
    }

    #[test]
    fn dept_simplified_matches_fig_1b() {
        let d = dept_simplified();
        let g = DtdGraph::of(&d);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6);
        // the SCC {course, student, project} has 5 edges (Example 3.1)
        let c = d.elem("course").unwrap();
        let s = d.elem("student").unwrap();
        let p = d.elem("project").unwrap();
        let scc_edges = g
            .edges()
            .iter()
            .filter(|e| [c, s, p].contains(&e.from) && [c, s, p].contains(&e.to))
            .count();
        assert_eq!(scc_edges, 5);
        assert_eq!(cycle_count(&g), 3);
    }

    #[test]
    fn cross_matches_table5() {
        assert_eq!(nmc(&cross()), (4, 5, 2));
    }

    #[test]
    fn bioml_subgraphs_match_table5() {
        assert_eq!(nmc(&bioml_a()), (4, 5, 2), "Fig. 15a");
        assert_eq!(nmc(&bioml_b()), (4, 6, 3), "Fig. 15b");
        assert_eq!(nmc(&bioml_c()), (4, 6, 3), "Fig. 15c");
        assert_eq!(nmc(&bioml_d()), (4, 7, 4), "Fig. 15d / Fig. 11b");
    }

    #[test]
    fn gedml_matches_table5() {
        assert_eq!(nmc(&gedml()), (5, 11, 9), "Fig. 11c");
    }

    #[test]
    fn gedml_supports_even_data_query() {
        let d = gedml();
        let g = DtdGraph::of(&d);
        let even = d.elem("Even").unwrap();
        let data = d.elem("Data").unwrap();
        assert!(g.reach_strict(even).contains(data));
        // root reaches everything
        for id in d.ids() {
            assert!(g.reaches_or_self(d.root(), id), "{}", d.name(id));
        }
    }

    #[test]
    fn cross_supports_exp1_and_exp2_queries() {
        let d = cross();
        let g = DtdGraph::of(&d);
        let (a, b, c, dd) = (
            d.elem("a").unwrap(),
            d.elem("b").unwrap(),
            d.elem("c").unwrap(),
            d.elem("d").unwrap(),
        );
        assert!(g.has_edge(a, b), "Qa's a/b step");
        assert!(g.reach_strict(b).contains(c), "Qa's b//c step");
        assert!(g.has_edge(c, dd), "Qa's c/d step");
        assert!(g.reach_strict(a).contains(a), "`a` recursive for Exp-2");
    }

    #[test]
    fn bioml_queries_reachable() {
        for d in [bioml_a(), bioml_b(), bioml_c(), bioml_d()] {
            let g = DtdGraph::of(&d);
            let gene = d.elem("gene").unwrap();
            let locus = d.elem("locus").unwrap();
            let dna = d.elem("dna").unwrap();
            assert!(g.reach_strict(gene).contains(locus));
            assert!(g.reach_strict(gene).contains(dna));
        }
    }

    #[test]
    fn bioml_chain_is_contained() {
        use crate::containment::is_contained_in;
        assert!(is_contained_in(&bioml_a(), &bioml_b()));
        assert!(is_contained_in(&bioml_a(), &bioml_c()));
        assert!(is_contained_in(&bioml_b(), &bioml_d()));
        assert!(is_contained_in(&bioml_c(), &bioml_d()));
        assert!(!is_contained_in(&bioml_d(), &bioml_a()));
    }

    #[test]
    fn example_3_2_pair_is_contained() {
        use crate::containment::is_contained_in;
        assert!(is_contained_in(&example_3_2_view(), &example_3_2_source()));
    }

    #[test]
    fn complete_dag_shape() {
        let d1 = complete_dag(4);
        let g = DtdGraph::of(&d1);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6); // C(4,2)
        assert_eq!(cycle_count(&g), 0);
        let d2 = complete_dag_with_b(4);
        let g2 = DtdGraph::of(&d2);
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.edge_count(), 6 + 3 + 1);
        use crate::containment::is_contained_in;
        assert!(is_contained_in(&d1, &d2));
    }
}
