#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! **SQLGen-R** — the baseline of Krishnamurthy et al. \[39\] (paper §3.1):
//! translating recursive path queries over recursive DTDs into SQL'99
//! `WITH…RECURSIVE`.
//!
//! For each descendant-axis hop `rec(A, B)` the algorithm derives a *query
//! graph* from the DTD (the nodes lying on some A→B path), partitions it
//! into strongly-connected components, and emits one recursion whose body
//! carries **one join and one union per edge** of the region — the
//! star-shaped multi-relation fixpoint `φ(R, R₁…R_k)` of Fig. 2, with `Rid`
//! tags steering which edge relation each tuple may join next.
//!
//! As in the paper's evaluation (§6), SQLGen-R is run *through the same
//! translation framework* as the other approaches: `XPathToEXp` is invoked
//! in `External` rec mode, and every opaque `rec(A,B)` placeholder is
//! overridden with a [`MultiLfpSpec`](x2s_rel::MultiLfpSpec) plan ("we tested SQLGen-R by
//! generating a with…recursive query for each rec(A,B) in our translation
//! framework"). This is what lets Figs. 12–17 compare R/E/X on identical
//! query shapes.

pub mod gen;
pub mod scc;

pub use gen::{build_rec_plan, SqlGenR};
pub use scc::strongly_connected_components;
