//! Tarjan's strongly-connected-components algorithm over translation-graph
//! node subsets — SQLGen-R's query-graph partitioning step (§3.1: "It then
//! partitions G_Q into strongly-connected components c1…cn, sorted in the
//! top–down topological order").

use std::collections::{HashMap, HashSet};
use x2s_core::graph::{TNode, TransGraph};

/// Compute SCCs of the subgraph induced by `nodes`, returned in reverse
/// topological order of the condensation (sources first).
pub fn strongly_connected_components(g: &TransGraph<'_>, nodes: &[TNode]) -> Vec<Vec<TNode>> {
    let node_set: HashSet<TNode> = nodes.iter().copied().collect();
    let mut state = Tarjan {
        g,
        node_set: &node_set,
        index: 0,
        indices: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        components: Vec::new(),
    };
    for &n in nodes {
        if !state.indices.contains_key(&n) {
            state.strongconnect(n);
        }
    }
    // Tarjan emits components in reverse topological order; reverse them so
    // sources come first ("top-down topological order").
    state.components.reverse();
    state.components
}

struct Tarjan<'a, 'g> {
    g: &'a TransGraph<'g>,
    node_set: &'a HashSet<TNode>,
    index: usize,
    indices: HashMap<TNode, usize>,
    lowlink: HashMap<TNode, usize>,
    on_stack: HashSet<TNode>,
    stack: Vec<TNode>,
    components: Vec<Vec<TNode>>,
}

impl Tarjan<'_, '_> {
    fn strongconnect(&mut self, v: TNode) {
        self.indices.insert(v, self.index);
        self.lowlink.insert(v, self.index);
        self.index += 1;
        self.stack.push(v);
        self.on_stack.insert(v);
        for w in self.g.children(v) {
            if !self.node_set.contains(&w) {
                continue;
            }
            if !self.indices.contains_key(&w) {
                self.strongconnect(w);
                let lw = self.lowlink[&w];
                let lv = self.lowlink[&v];
                self.lowlink.insert(v, lv.min(lw));
            } else if self.on_stack.contains(&w) {
                let iw = self.indices[&w];
                let lv = self.lowlink[&v];
                self.lowlink.insert(v, lv.min(iw));
            }
        }
        if self.lowlink[&v] == self.indices[&v] {
            let mut comp = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            self.components.push(comp);
        }
    }
}

/// Whether a component is cyclic (more than one node, or a self-loop).
pub fn is_cyclic_component(g: &TransGraph<'_>, comp: &[TNode]) -> bool {
    comp.len() > 1 || (comp.len() == 1 && g.has_edge(comp[0], comp[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2s_dtd::samples;

    #[test]
    fn dept_has_the_example_3_1_scc() {
        // Example 3.1: SCC {Rc, Rs, Rp} with 3 nodes and 5 edges
        let d = samples::dept_simplified();
        let g = TransGraph::new(&d);
        let all: Vec<TNode> = (0..g.len()).collect();
        let comps = strongly_connected_components(&g, &all);
        let big = comps.iter().find(|c| c.len() == 3).expect("3-node SCC");
        let names: Vec<&str> = big.iter().map(|&n| g.name(n)).collect();
        assert!(names.contains(&"course"));
        assert!(names.contains(&"student"));
        assert!(names.contains(&"project"));
        let edges = big
            .iter()
            .flat_map(|&u| big.iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| g.has_edge(u, v))
            .count();
        assert_eq!(edges, 5, "Example 3.1: 3 nodes and 5 edges");
        assert!(is_cyclic_component(&g, big));
    }

    #[test]
    fn topological_order_sources_first() {
        let d = samples::dept_simplified();
        let g = TransGraph::new(&d);
        let all: Vec<TNode> = (0..g.len()).collect();
        let comps = strongly_connected_components(&g, &all);
        // doc before dept before the SCC
        let pos = |name: &str| {
            comps
                .iter()
                .position(|c| c.iter().any(|&n| g.name(n) == name))
                .unwrap()
        };
        assert!(pos("#doc") < pos("dept"));
        assert!(pos("dept") < pos("course"));
    }

    #[test]
    fn acyclic_graph_gives_singletons() {
        let d = samples::complete_dag(4);
        let g = TransGraph::new(&d);
        let all: Vec<TNode> = (0..g.len()).collect();
        let comps = strongly_connected_components(&g, &all);
        assert_eq!(comps.len(), g.len());
        assert!(comps.iter().all(|c| !is_cyclic_component(&g, c)));
    }

    #[test]
    fn subset_restriction_respected() {
        let d = samples::dept_simplified();
        let g = TransGraph::new(&d);
        let course = g.node(d.elem("course").unwrap());
        let student = g.node(d.elem("student").unwrap());
        // without project, course↔student is still an SCC
        let comps = strongly_connected_components(&g, &[course, student]);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
    }
}
