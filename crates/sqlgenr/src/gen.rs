//! SQL generation for SQLGen-R: per-`rec(A,B)` multi-relation recursions,
//! and the end-to-end baseline translator.

use crate::scc::{is_cyclic_component, strongly_connected_components};
use std::collections::HashMap;
use x2s_core::graph::{TNode, TransGraph};
use x2s_core::pipeline::{TranslateError, Translation};
use x2s_core::x2e::{xpath_to_exp, RecMode};
use x2s_core::SqlOptions;
use x2s_dtd::Dtd;
use x2s_rel::{MultiLfpEdge, MultiLfpSpec, Plan, Pred, Relation, Value};
use x2s_xpath::Path;

/// Build the SQLGen-R plan for `rec(a, b)`: all pairs `(x, y)` such that
/// `x` is an `a`-node, `y` a `b`-node, and `y` is a strict descendant of
/// `x` along DTD paths (Fig. 2).
///
/// The query graph is the region of nodes on some `a → b` path. The
/// recursion body carries one join+union per region edge — the SQL'99
/// star shape the paper contrasts with the simple LFP. The init part seeds
/// one `(x, child)` pair per region edge out of `a`.
pub fn build_rec_plan(g: &TransGraph<'_>, a: TNode, b: TNode) -> Plan {
    let region = g.nodes_on_paths(a, b);
    if region.is_empty() || !region.contains(&b) {
        return Plan::Values(Relation::new(vec!["F".into(), "T".into()]));
    }

    // init: edges out of `a` into the region.
    let mut init: Vec<(String, Plan)> = Vec::new();
    for c in g.children(a) {
        if !region.contains(&c) {
            continue;
        }
        let scan = Plan::Scan(format!("R_{}", g.name(c)));
        let seeded = match g.elem(a) {
            // F of R_c must be an a-node: semijoin against R_a's ids
            Some(_) => scan.semi_join(Plan::Scan(format!("R_{}", g.name(a))), 0, 1),
            // a is the document: its only "node id" is the `'_'` marker
            None => scan.select(Pred::ColEqValue(0, Value::Doc)),
        };
        init.push((
            g.name(c).to_string(),
            seeded.project(vec![(0, "S"), (1, "T")]),
        ));
    }

    // recursion body: one rule per region edge.
    let mut edges = Vec::new();
    for &u in &region {
        for v in g.children(u) {
            if !region.contains(&v) {
                continue;
            }
            edges.push(MultiLfpEdge {
                src_tag: g.name(u).to_string(),
                dst_tag: g.name(v).to_string(),
                rel: Plan::Scan(format!("R_{}", g.name(v))),
            });
        }
    }

    // Prune rules that can never fire: the region includes `a` itself, but
    // unless some cycle returns to `a`, no tuple is ever tagged with `a`'s
    // name, so its outgoing rules are dead weight in every iteration (and
    // the static analyzer rightly rejects them as unproducible). Liveness
    // is the fixpoint of tag producibility from the init parts.
    let mut live: std::collections::BTreeSet<&str> = init.iter().map(|(t, _)| t.as_str()).collect();
    loop {
        let before = live.len();
        for e in &edges {
            if live.contains(e.src_tag.as_str()) {
                live.insert(e.dst_tag.as_str());
            }
        }
        if live.len() == before {
            break;
        }
    }
    let live: std::collections::BTreeSet<String> = live.into_iter().map(String::from).collect();
    edges.retain(|e| live.contains(&e.src_tag));

    let fixpoint = Plan::MultiLfp(MultiLfpSpec { init, edges });
    // final: keep b-tagged rows, project the (F, T) pairs.
    fixpoint
        .select(Pred::ColEqValue(2, Value::str(g.name(b))))
        .project(vec![(0, "F"), (1, "T")])
}

/// The SQLGen-R translator, interface-compatible with
/// `x2s_core::pipeline::Translator`.
pub struct SqlGenR<'a> {
    dtd: &'a Dtd,
    sql_options: SqlOptions,
}

impl<'a> SqlGenR<'a> {
    /// Baseline translator over a DTD.
    pub fn new(dtd: &'a Dtd) -> Self {
        // The paper treats WITH…RECURSIVE as a black box: no selections can
        // be pushed inside it, and the root filter stays outside — the very
        // limitation §3.1 criticizes.
        SqlGenR {
            dtd,
            sql_options: SqlOptions {
                push_selections: false,
                root_filter_pushdown: false,
                // the program *around* the recursion boxes still goes
                // through the logical optimizer — only the boxes themselves
                // are opaque, which is the §3.1 limitation being modelled
                ..SqlOptions::default()
            },
        }
    }

    /// Translate an XPath query into a program whose descendant hops are
    /// SQL'99 multi-relation recursions.
    pub fn translate(&self, path: &Path) -> Result<Translation, TranslateError> {
        let tr = xpath_to_exp(path, self.dtd, &RecMode::External)?;
        let g = TransGraph::new(self.dtd);
        let mut overrides: HashMap<x2s_exp::VarId, Plan> = HashMap::new();
        for er in &tr.external_recs {
            overrides.insert(er.var, build_rec_plan(&g, er.from, er.to));
        }
        // Note: the query is deliberately NOT pruned — pruning would fold
        // the opaque placeholders away. The optimizer's dead-statement
        // elimination drops whatever the result does not reach.
        let (program, opt) =
            x2s_core::exp_to_sql_with_report(&tr.query, &self.sql_options, &overrides)?;
        Ok(Translation {
            extended: tr.query,
            program,
            opt,
            // SQLGen-R models the black-box WITH…RECURSIVE baseline; it
            // never gets the interval fast path
            interval: None,
        })
    }

    /// Number of edges in the `rec(a,b)` region — the per-iteration
    /// join/union count of the generated recursion (5 for Example 3.1).
    ///
    /// Reporting/test helper; panics on names the DTD does not declare.
    #[allow(clippy::expect_used)]
    pub fn region_edge_count(&self, from: &str, to: &str) -> usize {
        let g = TransGraph::new(self.dtd);
        let a = match from {
            "#doc" => g.doc(),
            name => g.node(self.dtd.elem(name).expect("known type")),
        };
        let b = g.node(self.dtd.elem(to).expect("known type"));
        let region = g.nodes_on_paths(a, b);
        region
            .iter()
            .flat_map(|&u| g.children(u).into_iter().map(move |v| (u, v)))
            .filter(|(_, v)| region.contains(v))
            .count()
    }

    /// SCC decomposition of the `rec` region (reporting / tests).
    ///
    /// Panics on names the DTD does not declare, like [`Self::region_edge_count`].
    #[allow(clippy::expect_used)]
    pub fn region_sccs(&self, from: &str, to: &str) -> Vec<Vec<String>> {
        let g = TransGraph::new(self.dtd);
        let a = match from {
            "#doc" => g.doc(),
            name => g.node(self.dtd.elem(name).expect("known type")),
        };
        let b = g.node(self.dtd.elem(to).expect("known type"));
        let region = g.nodes_on_paths(a, b);
        strongly_connected_components(&g, &region)
            .into_iter()
            .map(|c| {
                let cyclic = is_cyclic_component(&g, &c);
                c.into_iter()
                    .map(|n| {
                        if cyclic {
                            format!("{}*", g.name(n))
                        } else {
                            g.name(n).to_string()
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use x2s_rel::{ExecOptions, Stats};
    use x2s_shred::edge_database;
    use x2s_xml::parse_xml;
    use x2s_xpath::{eval_from_document, parse_xpath};

    fn check_against_oracle(dtd: &Dtd, xml: &str, queries: &[&str]) {
        let tree = parse_xml(dtd, xml).unwrap();
        let db = edge_database(&tree, dtd);
        for q in queries {
            let path = parse_xpath(q).unwrap();
            let native: BTreeSet<u32> = eval_from_document(&path, &tree, dtd)
                .into_iter()
                .map(|n| n.0)
                .collect();
            let tr = SqlGenR::new(dtd).translate(&path).unwrap();
            let mut stats = Stats::default();
            let got = tr.try_run(&db, ExecOptions::default(), &mut stats).unwrap();
            assert_eq!(got, native, "SQLGen-R query {q}");
        }
    }

    #[test]
    fn dept_q1_matches_oracle() {
        let d = x2s_dtd::samples::dept_simplified();
        check_against_oracle(
            &d,
            "<dept><course><course><course/><project><course><project/></course></project></course><student/><student><course/></student></course></dept>",
            &["dept//project", "dept//course", "dept/course"],
        );
    }

    #[test]
    fn uses_multilfp_and_pays_per_edge_joins() {
        let d = x2s_dtd::samples::dept_simplified();
        let tree = parse_xml(
            &d,
            "<dept><course><course><project/></course><student><course><project/></course></student></course></dept>",
        )
        .unwrap();
        let db = edge_database(&tree, &d);
        let path = parse_xpath("dept//project").unwrap();
        let tr = SqlGenR::new(&d).translate(&path).unwrap();
        let mut stats = Stats::default();
        tr.try_run(&db, ExecOptions::default(), &mut stats).unwrap();
        assert!(stats.multilfp_invocations >= 1, "recursion used");
        assert!(
            stats.joins >= 5 * stats.multilfp_iterations.min(3),
            "k joins per iteration: {stats}"
        );
    }

    #[test]
    fn region_edges_match_example_3_1() {
        // dept//project region: dept→course plus the 5 SCC edges = 6; the
        // recursion body of Fig. 2 carries the 5 edges among {Rc,Rs,Rp} and
        // the Rd→Rc edge seeds the init part.
        let d = x2s_dtd::samples::dept_simplified();
        let genr = SqlGenR::new(&d);
        assert_eq!(genr.region_edge_count("dept", "project"), 6);
        let sccs = genr.region_sccs("dept", "project");
        assert!(sccs
            .iter()
            .any(|c| c.len() == 3 && c.iter().all(|n| n.ends_with('*'))));
    }

    #[test]
    fn qualifiers_work_through_the_shared_framework() {
        let d = x2s_dtd::samples::cross();
        check_against_oracle(
            &d,
            "<a><b><a><c><d/><a/></c></a></b><c><d/></c></a>",
            &[
                "a/b//c/d",
                "a[//c]//d",
                "a[not //c]",
                "a[not //c or (b and //d)]",
            ],
        );
    }

    #[test]
    fn recursive_root_handled() {
        let d = x2s_dtd::samples::gedml();
        check_against_oracle(
            &d,
            "<Even><Sour><Data><Even><Sour/></Even></Data><Note/></Sour><Obje><Sour><Data/></Sour></Obje></Even>",
            &["Even//Data", "//Even", "Even//Even"],
        );
    }

    #[test]
    fn empty_rec_region_yields_empty() {
        let d = x2s_dtd::samples::cross();
        let g = TransGraph::new(&d);
        let dd = g.node(d.elem("d").unwrap());
        // no b below d… actually d→c→b exists; use doc as target-free case:
        let b = g.node(d.elem("b").unwrap());
        let plan = build_rec_plan(&g, dd, b);
        // d reaches b (d→c→a→b); region non-empty — use a genuinely empty pair
        let _ = plan;
        let d2 = x2s_dtd::samples::complete_dag(3);
        let g2 = TransGraph::new(&d2);
        let a3 = g2.node(d2.elem("A3").unwrap());
        let a1 = g2.node(d2.elem("A1").unwrap());
        let plan = build_rec_plan(&g2, a3, a1);
        assert!(matches!(plan, Plan::Values(ref r) if r.is_empty()));
    }
}
